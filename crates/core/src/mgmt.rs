//! The management API — the provider/controller surface of §4.3.
//!
//! Exposes exactly what the paper says a centralized controller consumes:
//! "the set of active communicators, including the set of GPUs (and
//! hosts) that make up the ranks ... and the current configuration of
//! collective strategy and network resources", plus collective tracing —
//! and accepts policy outputs: new ring configurations (OR), flow-route
//! maps (FFA/PFA) and traffic windows (TS).

use crate::config::{CollectiveConfig, RouteMap};
use crate::health::{FailureEvent, HealthCounters, HealthDelivery, HealthSubscription};
use crate::messages::{ProxyMsg, TransportMsg};
use crate::qos::TrafficWindows;
use crate::tracing::TraceRecord;
use crate::world::World;
use mccs_collectives::RingOrder;
use mccs_ipc::{AppId, CommunicatorId};
use mccs_sim::Nanos;
use mccs_topology::GpuId;
use std::collections::BTreeMap;

/// One communicator as the controller sees it.
#[derive(Clone, Debug)]
pub struct CommInfo {
    /// The communicator.
    pub comm: CommunicatorId,
    /// Owning application.
    pub app: AppId,
    /// Rank -> GPU map.
    pub world: Vec<GpuId>,
    /// Ranks registered so far (all of them once init completes).
    pub registered_ranks: usize,
    /// Current configuration epoch.
    pub epoch: u64,
    /// Channel count.
    pub channels: usize,
    /// Current ring per channel.
    pub rings: Vec<RingOrder>,
}

/// A borrow of the world with controller privileges.
pub struct Management<'a> {
    world: &'a mut World,
}

impl<'a> Management<'a> {
    /// Wrap the world.
    pub fn new(world: &'a mut World) -> Self {
        Management { world }
    }

    /// All active communicators (one entry per communicator, aggregated
    /// over its per-GPU rank states).
    pub fn communicators(&self) -> Vec<CommInfo> {
        let mut by_comm: BTreeMap<CommunicatorId, CommInfo> = BTreeMap::new();
        for ((comm, _gpu), rank) in self.world.comms.iter() {
            let entry = by_comm.entry(*comm).or_insert_with(|| CommInfo {
                comm: *comm,
                app: rank.app,
                world: rank.world_gpus.clone(),
                registered_ranks: 0,
                epoch: rank.config.epoch,
                channels: rank.config.channels(),
                rings: rank.config.channel_rings.clone(),
            });
            entry.registered_ranks += 1;
        }
        by_comm.into_values().collect()
    }

    /// One communicator's info.
    pub fn communicator(&self, comm: CommunicatorId) -> Option<CommInfo> {
        self.communicators().into_iter().find(|c| c.comm == comm)
    }

    /// The current configuration of a communicator (rank 0's copy).
    pub fn config_of(&self, comm: CommunicatorId) -> Option<CollectiveConfig> {
        self.world
            .comms
            .iter()
            .find(|((c, _), _)| *c == comm)
            .map(|(_, r)| r.config.clone())
    }

    /// Issue a runtime reconfiguration: new channel rings and flow routes.
    /// The epoch is advanced automatically; delivery to each rank's proxy
    /// carries independent control-plane jitter (the Figure 4 hazard the
    /// barrier protocol exists for).
    ///
    /// # Panics
    /// Panics if the communicator is unknown or not fully registered.
    pub fn reconfigure(&mut self, comm: CommunicatorId, rings: Vec<RingOrder>, routes: RouteMap) {
        let info = self
            .communicator(comm)
            .unwrap_or_else(|| panic!("reconfigure of unknown {comm}"));
        assert_eq!(
            info.registered_ranks,
            info.world.len(),
            "{comm} not fully registered"
        );
        assert!(!rings.is_empty(), "need at least one channel ring");
        let config = CollectiveConfig {
            epoch: info.epoch + 1,
            channel_rings: rings,
            routes,
        };
        let incarnation = self.world.controller.incarnation;
        for &gpu in &info.world {
            self.world.send_control(
                gpu,
                ProxyMsg::Reconfigure {
                    comm,
                    incarnation,
                    config: config.clone(),
                },
            );
        }
    }

    /// Install (or clear, with `None`) a traffic-window schedule for an
    /// application on every transport engine — the TS enforcement hook.
    ///
    /// Schedules originate outside the service (tenant or controller
    /// policy), so a malformed one is rejected as `InvalidArgument`; the
    /// transports never see it and nothing is partially installed.
    pub fn set_traffic_windows(
        &mut self,
        app: AppId,
        windows: Option<TrafficWindows>,
    ) -> Result<(), crate::error::ServiceError> {
        if let Some(w) = &windows {
            w.validate()?;
        }
        let nics: Vec<_> = self.world.topo.nics().iter().map(|n| n.id).collect();
        for nic in nics {
            self.world.send_to_transport(
                nic,
                TransportMsg::SetWindows {
                    app,
                    windows: windows.clone(),
                },
            );
        }
        Ok(())
    }

    /// All trace records of an application (the §4.3 tracing API).
    pub fn trace(&self, app: AppId) -> Vec<TraceRecord> {
        self.world.trace.for_app(app).into_iter().cloned().collect()
    }

    /// An application's rank-0 completed-collective timeline.
    pub fn timeline(&self, app: AppId) -> Vec<TraceRecord> {
        self.world
            .trace
            .timeline(app)
            .into_iter()
            .cloned()
            .collect()
    }

    /// The idle gaps of an application's collective timeline — what the
    /// TS policy schedules other tenants into.
    pub fn idle_gaps(&self, app: AppId) -> Vec<(Nanos, Nanos)> {
        self.world.trace.idle_gaps(app)
    }

    /// Tenant-perceived collective latencies of an app's rank-0 endpoint:
    /// `(seq, issued_at_shim, done_at_shim)`. This is what an nccl-tests
    /// style benchmark measures — including the full IPC round trip, which
    /// the service-internal trace excludes.
    pub fn tenant_latencies(&self, app: AppId) -> Vec<(u64, Nanos, Nanos)> {
        let Some(endpoint) = self
            .world
            .endpoints
            .iter()
            .position(|e| e.app == app && e.rank == 0)
        else {
            return Vec::new();
        };
        self.world.tenant_log.latencies_of_endpoint(endpoint)
    }

    /// Tenant-perceived collective outcomes of an app's rank-0 endpoint,
    /// including collectives the service cleanly failed back to the
    /// tenant (`failed == true`, with the issue-to-failure duration the
    /// tenant actually waited). JCT reports consume this to count
    /// failures explicitly instead of silently dropping them.
    pub fn tenant_outcomes(&self, app: AppId) -> Vec<crate::world::TenantRecord> {
        let Some(endpoint) = self
            .world
            .endpoints
            .iter()
            .position(|e| e.app == app && e.rank == 0)
        else {
            return Vec::new();
        };
        self.world.tenant_log.outcomes_of_endpoint(endpoint)
    }

    /// Instantaneous utilization of every link carrying traffic, sorted
    /// most-loaded first — the "link utilization" half of the cluster
    /// state the paper's controller consumes (§3: the provider hides
    /// "the cloud's network topology, link utilization, etc." behind the
    /// service; this is the provider-side view of it).
    pub fn link_utilization(&self) -> Vec<(mccs_topology::LinkId, f64)> {
        let mut v: Vec<(mccs_topology::LinkId, f64)> = self
            .world
            .topo
            .links()
            .iter()
            .map(|l| (l.id, self.world.net.link_utilization(l.id)))
            .filter(|&(_, u)| u > 0.0)
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("utilization is finite"));
        v
    }

    /// The most utilized link right now, if any traffic is flowing.
    pub fn hottest_link(&self) -> Option<(mccs_topology::LinkId, f64)> {
        self.link_utilization().into_iter().next()
    }

    /// The provider's health view: links currently down.
    pub fn links_down(&self) -> Vec<mccs_topology::LinkId> {
        self.world.health.links_down().collect()
    }

    /// The provider's health view: hosts currently down.
    pub fn hosts_down(&self) -> Vec<mccs_topology::HostId> {
        self.world.health.hosts_down().collect()
    }

    /// The provider's health view: links running below line rate, with
    /// remaining capacity as a fraction (brownouts, as opposed to the
    /// `links_down` blackout set).
    pub fn links_degraded(&self) -> Vec<(mccs_topology::LinkId, f64)> {
        self.world
            .health
            .links_degraded()
            .map(|(l, m)| (l, f64::from(m) / 1000.0))
            .collect()
    }

    /// Retry/recovery counters accumulated since boot.
    pub fn health_counters(&self) -> HealthCounters {
        self.world.health.counters
    }

    /// Engine-scheduler efficiency counters (total polls, wasted polls,
    /// wakes delivered) for the run so far. Deliberately outside
    /// [`HealthCounters`]: scheduling efficiency is an implementation
    /// property, not observable behavior, so it stays out of the
    /// determinism digest the oracle-equivalence gate compares.
    pub fn scheduler_stats(&self) -> crate::health::SchedulerStats {
        self.world.health.scheduler
    }

    /// Controller availability counters: crashes, restarts, cumulative
    /// downtime, checkpoints taken, reconciliation passes run, and stale
    /// commands ranks fenced. Like [`scheduler_stats`](Self::scheduler_stats)
    /// these are deliberately outside [`HealthCounters`] and the
    /// determinism digest — a crash whose restart reconciles to a no-op
    /// must hash identically to the crash-free run.
    pub fn controller_stats(&self) -> crate::world::ControllerStats {
        self.world.controller.stats
    }

    /// Whether the controller is currently down (crashed and not yet
    /// restarted).
    pub fn controller_down(&self) -> bool {
        self.world.controller.down
    }

    /// The controller's current incarnation number (bumped on every
    /// restart; reconfiguration commands carry it for fencing).
    pub fn controller_incarnation(&self) -> u64 {
        self.world.controller.incarnation
    }

    /// The full failure-event log, in occurrence order. (Compatibility
    /// shim over the push channel — controllers should prefer
    /// [`subscribe_health`](Management::subscribe_health).)
    pub fn failure_events(&self) -> &[FailureEvent] {
        self.world.health.events()
    }

    /// Subscribe to the bounded health push channel from its current
    /// tail: subsequent [`poll_health`](Management::poll_health) calls
    /// deliver only events recorded after this point.
    pub fn subscribe_health(&self) -> HealthSubscription {
        self.world.health.subscribe()
    }

    /// Drain everything the push channel holds for `sub`: in-order
    /// seq-numbered events, or a snapshot resync if the subscriber fell
    /// behind the ring.
    pub fn poll_health(&self, sub: &mut HealthSubscription) -> HealthDelivery {
        self.world.health.poll(sub)
    }

    /// Resolve an application id by the name given at `add_app`.
    pub fn app_by_name(&self, name: &str) -> Option<AppId> {
        self.world
            .app_names
            .iter()
            .position(|n| n == name)
            .map(|i| AppId(i as u32))
    }

    /// Direct read access to the world (experiment harnesses).
    pub fn world(&self) -> &World {
        self.world
    }
}
