//! The proxy engine — one per GPU.
//!
//! Proxies own communicator state, sequence tenant collectives, derive
//! edge schedules from the provider's [`CollectiveConfig`], drive
//! intra-host channel transfers, hand inter-host edges to transports, and
//! run the paper's Figure 4 **dynamic reconfiguration protocol**:
//!
//! 1. a reconfiguration request (`Req`) reaches each rank's proxy at a
//!    different time;
//! 2. upon receipt, a proxy stops launching, queues subsequent
//!    collectives, and contributes its *last launched* sequence number to
//!    a control-ring AllGather (`AG`);
//! 3. once a proxy has gathered all ranks' contributions it computes the
//!    maximum and **drains**: launches exactly the queued collectives with
//!    `seq <= max` under the *old* configuration;
//! 4. when those complete, it tears down and re-establishes connections
//!    (modeled as [`ServiceConfig::reconnect_delay`](crate::config::ServiceConfig))
//!    and resumes under the new configuration.
//!
//! The safety property (checked by tests and asserted in traces): every
//! collective executes under the same configuration epoch on every rank,
//! and an absent reconfiguration adds zero overhead to the data path.

use crate::config::CollectiveConfig;
use crate::error::ServiceError;
use crate::health::FailureEvent;
use crate::messages::{ProxyMsg, TransportMsg};
use crate::world::{resources, World};
use mccs_collectives::{CollectiveOp, CollectiveSchedule, EdgeTask, ScheduleKey};
use mccs_device::{EventId, StreamId, StreamOp};
use mccs_ipc::{AppId, CollectiveRequest, CommunicatorId, ErrorCode, ShimCompletion};
use mccs_netsim::RouteChoice;
use mccs_sim::{Bytes, Engine, EnginePlan, Footprint, Nanos, Poll, Wake, WakeSet};
use mccs_topology::GpuId;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// A sequenced, not-yet-launched collective.
#[derive(Clone, Debug)]
pub struct PendingCollective {
    /// Tenant request id.
    pub req: u64,
    /// Assigned sequence number.
    pub seq: u64,
    /// The invocation.
    pub coll: CollectiveRequest,
}

/// The collective currently executing on a communicator rank.
#[derive(Clone, Debug)]
pub struct Inflight {
    /// Sequence number.
    pub seq: u64,
    /// App-stream dependency to wait for before moving data.
    pub dependency: Option<EventId>,
    /// Whether transfers have been launched.
    pub launched: bool,
    /// When transfers were launched (liveness timer base).
    pub launched_at: Option<Nanos>,
    /// Stall reports already escalated to the recovery engine.
    pub stall_reports: u32,
}

/// Reconfiguration protocol state (Figure 4).
#[derive(Clone, Debug)]
pub enum ReconfigState {
    /// No reconfiguration in flight — the fast path.
    Normal,
    /// `Req` received; gathering last-launched sequence numbers.
    Barrier {
        /// The configuration to apply.
        new_config: CollectiveConfig,
        /// rank -> last launched (`None` = never launched).
        entries: BTreeMap<usize, Option<u64>>,
    },
    /// Barrier complete; draining collectives `<= max_seq` under the old
    /// configuration.
    Draining {
        /// The configuration to apply.
        new_config: CollectiveConfig,
        /// Barrier maximum; `None` when no rank had launched anything.
        max_seq: Option<u64>,
    },
}

/// A barrier-gossip message parked until this rank enters the barrier:
/// `(epoch, pending config, entries, hops_left)`.
pub type PendingGossip = (u64, CollectiveConfig, BTreeMap<usize, Option<u64>>, usize);

/// One communicator rank's service-side state (lives in
/// [`World::comms`](crate::world::World) so the management API can see it).
#[derive(Debug)]
pub struct CommRank {
    /// Owning application.
    pub app: AppId,
    /// The rank's shim endpoint.
    pub endpoint: usize,
    /// Communicator id.
    pub comm: CommunicatorId,
    /// Rank -> GPU map.
    pub world_gpus: Vec<GpuId>,
    /// This rank.
    pub rank: usize,
    /// This rank's GPU.
    pub gpu: GpuId,
    /// Event recorded after each collective completes.
    pub comm_event: EventId,
    /// Service-internal streams, one per channel (grown on demand).
    pub streams: Vec<StreamId>,
    /// The provider's current strategy.
    pub config: CollectiveConfig,
    /// Next sequence number to assign.
    pub next_seq: u64,
    /// Last launched sequence number.
    pub last_launched: Option<u64>,
    /// Sequenced, unlaunched collectives.
    pub queue: VecDeque<PendingCollective>,
    /// The executing collective.
    pub inflight: Option<Inflight>,
    /// Reconfiguration protocol state.
    pub reconfig: ReconfigState,
    /// Launches are gated until this time (connection re-establishment).
    pub resume_at: Nanos,
    /// Barrier gossip that arrived before this rank's own `Req`:
    /// `(epoch, pending config, entries, hops_left)`.
    pub pending_gossip: Vec<PendingGossip>,
    /// When this rank last sent its barrier gossip (`Some` only while in
    /// the barrier). Drives the plan-gated gossip re-send timer.
    pub barrier_since: Option<Nanos>,
    /// The complete entry set of the last barrier this rank finished:
    /// `(epoch, entries)`. Lets a rank that has already applied a
    /// reconfiguration answer a peer still stuck gathering it — a peer
    /// whose final gossip hop was lost would otherwise resend an
    /// incomplete view forever past ranks that merely forward it.
    pub last_barrier: Option<(u64, BTreeMap<usize, Option<u64>>)>,
    /// Highest controller incarnation this rank has heard a
    /// reconfiguration from. Requests from older incarnations — a dead
    /// controller's commands still in flight when it crashed — are
    /// fenced (dropped without entering the barrier).
    pub controller_incarnation: u64,
}

impl CommRank {
    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.world_gpus.len()
    }

    /// The GPU of the next rank around the control ring.
    pub fn next_rank_gpu(&self) -> GpuId {
        self.world_gpus[(self.rank + 1) % self.size()]
    }
}

/// Send/recv byte footprints implied by an op of reference size `size`
/// over `n` ranks, as seen from `rank` (NCCL buffer semantics) — what the
/// service validates tenant buffer ranges against. Rooted ops are
/// asymmetric: `Broadcast` reads the send buffer only at the root (every
/// rank receives), and `Reduce` writes the recv buffer only at the root
/// (every rank sends).
pub fn buffer_demands(op: CollectiveOp, size: Bytes, n: usize, rank: usize) -> (Bytes, Bytes) {
    let n = n.max(1) as u64;
    match op {
        CollectiveOp::AllReduce(_) => (size, size),
        CollectiveOp::AllGather => (size / n, size),
        CollectiveOp::ReduceScatter(_) => (size, size / n),
        CollectiveOp::Broadcast { root } => {
            if rank == root {
                (size, size)
            } else {
                (Bytes::ZERO, size)
            }
        }
        CollectiveOp::Reduce { root, .. } => {
            if rank == root {
                (size, size)
            } else {
                (size, Bytes::ZERO)
            }
        }
    }
}

/// The per-GPU proxy engine.
pub struct ProxyEngine {
    gpu: GpuId,
}

/// The proxy's plan-phase output: schedules derived off-thread for
/// cache-missing pending launches. Derivation is a pure function of the
/// [`ScheduleKey`] inputs (topology, op, size, canonical rings), so a
/// stale plan can only ever insert the exact value the serial path would
/// have derived — committing one is never wrong, at worst redundant.
struct ProxyPlan {
    schedules: Vec<(ScheduleKey, CollectiveSchedule)>,
}

impl ProxyEngine {
    /// The proxy for `gpu`.
    pub fn new(gpu: GpuId) -> Self {
        ProxyEngine { gpu }
    }

    fn handle_msg(&mut self, w: &mut World, msg: ProxyMsg) {
        match msg {
            ProxyMsg::RegisterRank {
                app,
                endpoint,
                comm,
                world,
                rank,
                comm_event,
            } => {
                let config = CollectiveConfig::default_for(&w.topo, &world);
                let prior = w.comm_insert(
                    (comm, self.gpu),
                    CommRank {
                        app,
                        endpoint,
                        comm,
                        world_gpus: world,
                        rank,
                        gpu: self.gpu,
                        comm_event,
                        streams: Vec::new(),
                        config,
                        next_seq: 0,
                        last_launched: None,
                        queue: VecDeque::new(),
                        inflight: None,
                        reconfig: ReconfigState::Normal,
                        resume_at: Nanos::ZERO,
                        pending_gossip: Vec::new(),
                        barrier_since: None,
                        last_barrier: None,
                        controller_incarnation: 0,
                    },
                );
                assert!(
                    prior.is_none(),
                    "duplicate communicator registration for {comm} on {}",
                    self.gpu
                );
            }
            ProxyMsg::Collective {
                endpoint,
                req,
                coll,
            } => self.handle_collective(w, endpoint, req, coll),
            ProxyMsg::CommDestroy {
                endpoint,
                req,
                comm,
            } => {
                let key = (comm, self.gpu);
                let busy = w
                    .comms
                    .get(&key)
                    .is_some_and(|r| r.inflight.is_some() || !r.queue.is_empty());
                if busy {
                    w.send_completion(
                        endpoint,
                        ServiceError::invalid_usage(format!(
                            "{comm} still has collectives in flight"
                        ))
                        .completion(req),
                    );
                } else if w.comm_remove(key).is_some() {
                    // The schedule cache needs no cleanup: entries are
                    // keyed by ring shape, not communicator, and other
                    // communicators with the same shape may still use them.
                    w.send_completion(endpoint, ShimCompletion::CommDestroy { req });
                } else {
                    w.send_completion(
                        endpoint,
                        ServiceError::invalid_usage(format!("unknown communicator {comm}"))
                            .completion(req),
                    );
                }
            }
            ProxyMsg::Reconfigure {
                comm,
                incarnation,
                config,
            } => self.handle_reconfigure(w, comm, incarnation, config),
            ProxyMsg::BarrierGossip {
                comm,
                epoch,
                config,
                entries,
                hops_left,
            } => self.handle_gossip(w, comm, epoch, config, entries, hops_left),
        }
    }

    fn handle_collective(
        &mut self,
        w: &mut World,
        endpoint: usize,
        req: u64,
        coll: CollectiveRequest,
    ) {
        let key = (coll.comm, self.gpu);
        let Some(rank) = w.comms.get(&key) else {
            w.send_completion(
                endpoint,
                ServiceError::invalid_usage(format!(
                    "collective on unknown communicator {}",
                    coll.comm
                ))
                .completion(req),
            );
            return;
        };
        // Validate tenant buffer ranges (the §4.1 service-side check).
        let (send_bytes, recv_bytes) = buffer_demands(coll.op, coll.size, rank.size(), rank.rank);
        let send_ok = w
            .devices
            .validate(coll.send.0, coll.send.1, send_bytes.as_u64());
        let recv_ok = w
            .devices
            .validate(coll.recv.0, coll.recv.1, recv_bytes.as_u64());
        if let Err(e) = send_ok.and(recv_ok) {
            w.send_completion(
                endpoint,
                ServiceError::invalid_argument(format!("buffer validation failed: {e}"))
                    .completion(req),
            );
            return;
        }
        let rank = w.comms.get_mut(&key).expect("checked above");
        let seq = rank.next_seq;
        rank.next_seq += 1;
        let (app, rank_idx, op, size) = (rank.app, rank.rank, coll.op, coll.size);
        rank.queue.push_back(PendingCollective { req, seq, coll });
        w.trace
            .issued(app, coll.comm, rank_idx, seq, op, size, w.clock);
        w.send_completion(endpoint, ShimCompletion::CollectiveLaunched { req, seq });
    }

    fn handle_reconfigure(
        &mut self,
        w: &mut World,
        comm: CommunicatorId,
        incarnation: u64,
        config: CollectiveConfig,
    ) {
        let key = (comm, self.gpu);
        let Some(rank) = w.comms.get(&key) else {
            // A corrective Req can race a teardown; count it rather than
            // bring the service down.
            w.health.counters.reconfig_rejects += 1;
            w.health
                .record(FailureEvent::ReconfigRejected { comm, at: w.clock });
            return;
        };
        if incarnation < rank.controller_incarnation {
            // A dead controller incarnation's command arriving late —
            // fence it. Tallied only in the digest-excluded controller
            // stats: fencing exists so a crash leaves no observable mark.
            w.controller.stats.stale_fenced += 1;
            return;
        }
        if incarnation > rank.controller_incarnation {
            // First word from a newer incarnation: raise the fence even
            // if this particular request ends up rejected below.
            w.comms
                .get_mut(&key)
                .expect("rank just looked up")
                .controller_incarnation = incarnation;
        }
        let rank = w.comms.get(&key).expect("rank just looked up");
        match &rank.reconfig {
            ReconfigState::Normal if config.epoch == rank.config.epoch + 1 => {}
            ReconfigState::Barrier { new_config, .. }
            | ReconfigState::Draining { new_config, .. }
                if new_config.epoch == config.epoch =>
            {
                // Duplicate of a barrier we already entered (e.g. our
                // implicit request from gossip beat the explicit one).
                return;
            }
            _ => {
                // Overlapping or epoch-skipping reconfiguration — reject.
                // With a fault plan installed these can legitimately race
                // (the recovery engine and the controller both correcting);
                // without one the controller is misbehaving, but either way
                // the safe response is to drop the request and count it.
                w.health.counters.reconfig_rejects += 1;
                w.health
                    .record(FailureEvent::ReconfigRejected { comm, at: w.clock });
                return;
            }
        }
        self.begin_barrier(w, comm, config, BTreeMap::new());
    }

    /// Enter the reconfiguration barrier for `config` (from an explicit
    /// `Req` or implicitly from another rank's gossip when ours was lost),
    /// seeding the AllGather view with `seed` entries gathered elsewhere.
    fn begin_barrier(
        &mut self,
        w: &mut World,
        comm: CommunicatorId,
        config: CollectiveConfig,
        seed: BTreeMap<usize, Option<u64>>,
    ) {
        let key = (comm, self.gpu);
        let mut rank = w.comm_remove(key).expect("caller verified");
        let epoch = config.epoch;
        let mut entries = seed;
        entries.insert(rank.rank, rank.last_launched);
        // Merge gossip that arrived before our own request. Epochs can
        // legitimately skew: a neighbour's `Req` may land (and its gossip
        // reach us) before ours does, so matching-epoch gossip folds into
        // our barrier view, while gossip for a *later* epoch is held for
        // the reconfiguration that will consume it. Stale gossip cannot be
        // held here: `Normal` state only holds entries newer than the
        // applied epoch, so anything older indicates protocol corruption.
        let pending = std::mem::take(&mut rank.pending_gossip);
        let n = rank.size();
        for (e, cfg, gossip, hops) in pending {
            match e.cmp(&epoch) {
                std::cmp::Ordering::Equal => {
                    for (r, v) in &gossip {
                        entries.insert(*r, *v);
                    }
                }
                std::cmp::Ordering::Greater => rank.pending_gossip.push((e, cfg, gossip, hops)),
                std::cmp::Ordering::Less => panic!(
                    "stale barrier gossip for epoch {e} held across reconfiguration \
                     to epoch {epoch} on {comm} rank {}",
                    rank.rank
                ),
            }
        }
        rank.reconfig = ReconfigState::Barrier {
            new_config: config.clone(),
            entries: entries.clone(),
        };
        rank.barrier_since = Some(w.clock);
        if w.fault_plan.is_some() {
            // Arm the gossip re-send timer (control messages can be lost).
            w.schedule_wake(w.clock + w.svc.gossip_retry);
        }
        // Contribute to the AllGather: send own view to the next rank.
        // The merged view subsumes any held gossip, and it circulates the
        // whole ring (`n - 1` hops), so held messages need no separate
        // re-forwarding.
        let next_gpu = rank.next_rank_gpu();
        w.comm_insert(key, rank);
        if n > 1 {
            w.send_control(
                next_gpu,
                ProxyMsg::BarrierGossip {
                    comm,
                    epoch,
                    config,
                    entries,
                    hops_left: n - 1,
                },
            );
        }
        self.maybe_finish_barrier(w, comm);
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_gossip(
        &mut self,
        w: &mut World,
        comm: CommunicatorId,
        epoch: u64,
        config: CollectiveConfig,
        gossip: BTreeMap<usize, Option<u64>>,
        hops_left: usize,
    ) {
        let key = (comm, self.gpu);
        if !w.comms.contains_key(&key) {
            // Late gossip for a communicator this GPU already tore down.
            return;
        }
        // Implicit request: with a fault plan installed our own `Req` may
        // have been lost. Gossip for exactly the next epoch carries the
        // pending config, so enter the barrier from it instead of holding
        // the message forever (which would deadlock the ring).
        let implicit = {
            let rank = &w.comms[&key];
            w.fault_plan.is_some()
                && matches!(rank.reconfig, ReconfigState::Normal)
                && epoch == rank.config.epoch + 1
        };
        if implicit {
            self.begin_barrier(w, comm, config, gossip);
            return;
        }
        // Liveness under control loss: a rank that already finished this
        // epoch's barrier holds the complete view, while a peer whose
        // final gossip hop was dropped circulates an incomplete one that
        // ranks past the barrier only forward, never fill in. Answer with
        // the recorded complete view, sent the whole way around the ring
        // so it reaches the stuck rank wherever it sits. A complete view
        // never triggers this (`len == size`), so the answer terminates.
        let answer = {
            let rank = &w.comms[&key];
            if w.fault_plan.is_some() && gossip.len() < rank.size() {
                match &rank.last_barrier {
                    Some((e, full)) if *e == epoch => {
                        Some((rank.next_rank_gpu(), full.clone(), rank.size() - 1))
                    }
                    _ => None,
                }
            } else {
                None
            }
        };
        if let Some((next_gpu, entries, hops_left)) = answer {
            w.send_control(
                next_gpu,
                ProxyMsg::BarrierGossip {
                    comm,
                    epoch,
                    config,
                    entries,
                    hops_left,
                },
            );
            return;
        }
        let rank = w.comms.get_mut(&key).expect("checked above");
        let next_gpu = rank.next_rank_gpu();
        match &mut rank.reconfig {
            ReconfigState::Normal => {
                if epoch > rank.config.epoch {
                    // Our own Req has not arrived yet; hold the gossip for
                    // the reconfiguration that will consume it.
                    rank.pending_gossip.push((epoch, config, gossip, hops_left));
                } else if hops_left > 1 {
                    // Late circulation of a barrier we already completed
                    // and applied. We must not merge or hold it, but a
                    // slower rank downstream may still be gathering, so
                    // keep the ring chain alive.
                    w.send_control(
                        next_gpu,
                        ProxyMsg::BarrierGossip {
                            comm,
                            epoch,
                            config,
                            entries: gossip,
                            hops_left: hops_left - 1,
                        },
                    );
                }
            }
            ReconfigState::Barrier {
                entries,
                new_config,
            } => {
                if epoch == new_config.epoch {
                    for (r, v) in &gossip {
                        entries.insert(*r, *v);
                    }
                    if hops_left > 1 {
                        // Forward the *merged* view rather than the message
                        // as received: it is a superset, so one message can
                        // satisfy several downstream barriers at once.
                        let merged = entries.clone();
                        w.send_control(
                            next_gpu,
                            ProxyMsg::BarrierGossip {
                                comm,
                                epoch,
                                config,
                                entries: merged,
                                hops_left: hops_left - 1,
                            },
                        );
                    }
                    self.maybe_finish_barrier(w, comm);
                } else if epoch > new_config.epoch {
                    // Gossip from a reconfiguration we have not seen yet;
                    // hold it rather than corrupt the current barrier.
                    rank.pending_gossip.push((epoch, config, gossip, hops_left));
                } else if hops_left > 1 {
                    // Stale epoch: a slower rank may still need it — keep
                    // it circulating without merging.
                    w.send_control(
                        next_gpu,
                        ProxyMsg::BarrierGossip {
                            comm,
                            epoch,
                            config,
                            entries: gossip,
                            hops_left: hops_left - 1,
                        },
                    );
                }
            }
            ReconfigState::Draining { .. } => {
                // Our barrier is complete, but ranks downstream on the
                // control ring may still be gathering: dropping the message
                // here would break the forwarding chain and deadlock them.
                if hops_left > 1 {
                    w.send_control(
                        next_gpu,
                        ProxyMsg::BarrierGossip {
                            comm,
                            epoch,
                            config,
                            entries: gossip,
                            hops_left: hops_left - 1,
                        },
                    );
                }
            }
        }
    }

    fn maybe_finish_barrier(&mut self, w: &mut World, comm: CommunicatorId) {
        let key = (comm, self.gpu);
        let rank = w.comms.get_mut(&key).expect("caller verified");
        let ReconfigState::Barrier {
            new_config,
            entries,
        } = &rank.reconfig
        else {
            return;
        };
        if entries.len() < rank.size() {
            return;
        }
        let max_seq = entries.values().filter_map(|v| *v).max();
        rank.last_barrier = Some((new_config.epoch, entries.clone()));
        rank.reconfig = ReconfigState::Draining {
            new_config: new_config.clone(),
            max_seq,
        };
        rank.barrier_since = None;
    }

    /// Advance one communicator rank's execution state machine. Returns
    /// whether progress was made.
    fn step_comm(&mut self, w: &mut World, comm: CommunicatorId) -> bool {
        let key = (comm, self.gpu);
        let Some(mut rank) = w.comm_remove(key) else {
            return false;
        };
        let mut progressed = false;

        // 1. Finalize a completed (or cleanly failed) in-flight collective.
        if let Some(inf) = &rank.inflight {
            if inf.launched {
                if let Some(done_at) = w.collective_completed_at(comm, inf.seq) {
                    let seq = inf.seq;
                    // Record the communicator event so tenant streams
                    // waiting on it unblock.
                    let stream = ensure_stream(&mut rank, 0, w);
                    w.device_enqueue(stream, StreamOp::RecordEvent(rank.comm_event));
                    w.trace.completed(comm, rank.rank, seq, done_at);
                    w.send_completion(rank.endpoint, ShimCompletion::CollectiveDone { comm, seq });
                    rank.inflight = None;
                    progressed = true;
                } else if w.collective_failed(comm, inf.seq) {
                    let seq = inf.seq;
                    fail_to_tenant(&mut rank, w, comm, seq);
                    rank.inflight = None;
                    progressed = true;
                } else if w.fault_plan.is_some() {
                    // Liveness: escalate a silent stall to the recovery
                    // engine. Only armed under a fault plan — with none,
                    // no timers exist on this path at all.
                    let inf = rank.inflight.as_mut().expect("checked above");
                    if let Some(at) = inf.launched_at {
                        let grace = w
                            .svc
                            .liveness_timeout
                            .mul_f64(f64::from(inf.stall_reports + 1));
                        let deadline = at + grace;
                        if w.clock >= deadline {
                            inf.stall_reports += 1;
                            w.health.record(FailureEvent::CollectiveStalled {
                                comm,
                                seq: inf.seq,
                                at: w.clock,
                            });
                            w.schedule_wake(w.clock + w.svc.liveness_timeout);
                            progressed = true;
                        } else {
                            w.schedule_wake(deadline);
                        }
                    }
                }
            }
        }

        // 2. Launch a dependency-cleared in-flight collective — unless
        // another rank's transport already gave up on it, in which case
        // fail it locally too (keeping `last_launched` moving so a drain
        // waiting on this sequence still terminates).
        if let Some(inf) = &rank.inflight {
            if !inf.launched {
                let seq = inf.seq;
                if w.collective_failed(comm, seq) {
                    rank.queue
                        .pop_front()
                        .filter(|p| p.seq == seq)
                        .expect("inflight collective kept at queue head until launch");
                    fail_to_tenant(&mut rank, w, comm, seq);
                    rank.last_launched = Some(rank.last_launched.map_or(seq, |l| l.max(seq)));
                    rank.inflight = None;
                    progressed = true;
                } else {
                    let ready = inf
                        .dependency
                        .is_none_or(|ev| w.devices.event_time(ev).is_some());
                    if ready {
                        let coll = rank
                            .queue
                            .front()
                            .filter(|p| p.seq == seq)
                            .cloned()
                            .expect("inflight collective kept at queue head until launch");
                        rank.queue.pop_front();
                        launch_tasks(&mut rank, w, &coll);
                        let inf = rank.inflight.as_mut().expect("checked");
                        inf.launched = true;
                        inf.launched_at = Some(w.clock);
                        rank.last_launched = Some(seq);
                        progressed = true;
                    }
                }
            }
        }

        // 3. Apply a drained reconfiguration. Draining completes when
        // nothing is in flight and either no rank had launched anything
        // (`max_seq` is `None`) or we have launched up through the barrier
        // maximum. Our own contribution is part of the barrier max, so
        // `last_launched` can only be `None` when `max_seq` permits it.
        if let ReconfigState::Draining {
            new_config,
            max_seq,
        } = &rank.reconfig
        {
            let caught_up = max_seq.is_none_or(|m| rank.last_launched.is_some_and(|l| l >= m));
            let drained = rank.inflight.is_none() && caught_up;
            if drained {
                rank.config = new_config.clone();
                rank.reconfig = ReconfigState::Normal;
                // Report drain completion to the controller (plan-gated,
                // like the rest of the liveness machinery): the last
                // rank's report lets it retire the drain obligation.
                if w.fault_plan.is_some() {
                    w.health.record(FailureEvent::ReconfigApplied {
                        comm,
                        gpu: self.gpu,
                        epoch: rank.config.epoch,
                        at: w.clock,
                    });
                }
                // Tear down / re-establish peer connections. (The shared
                // schedule cache needs no flush here: entries are keyed by
                // ring shape, so the new config keys new entries and the
                // old shape's entries simply age out.)
                rank.resume_at = w.clock + w.svc.reconnect_delay;
                w.schedule_wake(rank.resume_at);
                progressed = true;
            }
        }

        // 3b. Barrier liveness (plan-gated): if the ring AllGather has
        // stalled — a gossip hop was dropped — re-send our merged view.
        // Merging is idempotent, so re-sends are always safe.
        if w.fault_plan.is_some() {
            if let (
                ReconfigState::Barrier {
                    new_config,
                    entries,
                },
                Some(since),
            ) = (&rank.reconfig, rank.barrier_since)
            {
                let deadline = since + w.svc.gossip_retry;
                if w.clock >= deadline && rank.size() > 1 {
                    let gossip = ProxyMsg::BarrierGossip {
                        comm,
                        epoch: new_config.epoch,
                        config: new_config.clone(),
                        entries: entries.clone(),
                        hops_left: rank.size() - 1,
                    };
                    let next_gpu = rank.next_rank_gpu();
                    rank.barrier_since = Some(w.clock);
                    w.health.counters.gossip_resends += 1;
                    w.send_control(next_gpu, gossip);
                    w.schedule_wake(w.clock + w.svc.gossip_retry);
                    progressed = true;
                } else {
                    w.schedule_wake(deadline);
                }
            }
        }

        // 4. Admit the next queued collective.
        if rank.inflight.is_none() && w.clock >= rank.resume_at {
            let admissible = match &rank.reconfig {
                ReconfigState::Normal => true,
                ReconfigState::Barrier { .. } => false,
                ReconfigState::Draining { max_seq, .. } => {
                    rank.queue.front().is_some_and(|p| Some(p.seq) <= *max_seq)
                }
            };
            if admissible {
                if let Some(p) = rank.queue.front() {
                    rank.inflight = Some(Inflight {
                        seq: p.seq,
                        dependency: p.coll.depends_on,
                        launched: false,
                        launched_at: None,
                        stall_reports: 0,
                    });
                    progressed = true;
                }
            }
        }

        w.comm_insert(key, rank);

        // 5. Implicit request from held gossip (plan-gated): once back in
        // `Normal`, gossip held for exactly the next epoch means the
        // explicit `Req` for it was lost — enter its barrier now.
        if w.fault_plan.is_some() {
            let held = {
                let rank = &w.comms[&key];
                if matches!(rank.reconfig, ReconfigState::Normal) {
                    let next = rank.config.epoch + 1;
                    rank.pending_gossip.iter().position(|(e, ..)| *e == next)
                } else {
                    None
                }
            };
            if let Some(idx) = held {
                let (_, config, gossip, _) = {
                    let rank = w.comms.get_mut(&key).expect("just inserted");
                    rank.pending_gossip.remove(idx)
                };
                self.begin_barrier(w, comm, config, gossip);
                progressed = true;
            }
        }
        progressed
    }
}

/// Report a cleanly failed collective to the tenant (recovery exhausted).
fn fail_to_tenant(rank: &mut CommRank, w: &mut World, comm: CommunicatorId, seq: u64) {
    // Record the communicator event so tenant streams waiting on the
    // collective unblock instead of hanging on a result that never comes.
    let stream = ensure_stream(rank, 0, w);
    w.device_enqueue(stream, StreamOp::RecordEvent(rank.comm_event));
    w.trace.failed(comm, rank.rank, seq, w.clock);
    w.health.counters.collectives_failed += 1;
    w.send_completion(
        rank.endpoint,
        ShimCompletion::CollectiveFailed {
            comm,
            seq,
            code: ErrorCode::SystemError,
            message: "recovery exhausted: transport gave up on the collective's flows".into(),
        },
    );
}

/// Get (creating on demand) the per-channel service stream.
fn ensure_stream(rank: &mut CommRank, channel: usize, w: &mut World) -> StreamId {
    while rank.streams.len() <= channel {
        let s = w.devices.create_stream(rank.gpu);
        rank.streams.push(s);
    }
    rank.streams[channel]
}

/// Compute the schedule and launch this rank's local edge tasks.
///
/// Schedule derivation is a pure function of (topology, op, size, channel
/// rings), so the derived schedule is cached **world-wide** in
/// [`World::schedule_cache`] under a [`ScheduleKey`] — every rank of a
/// communicator, and every *other* communicator whose rings canonicalize
/// to the same shape, shares one `Arc`, each rank projecting its own edge
/// tasks out of it. Because the rings are part of the key there is no
/// epoch bookkeeping: a reconfigured rank's new rings form a new key,
/// while a rank still draining under the old epoch keys by its old rings
/// and keeps hitting the old entry.
fn launch_tasks(rank: &mut CommRank, w: &mut World, p: &PendingCollective) {
    let epoch = rank.config.epoch;
    let local = if w.svc.cache_schedules {
        let topo = Arc::clone(&w.topo);
        let key = ScheduleKey::for_ring(&topo, p.coll.op, p.coll.size, &rank.config.channel_rings);
        w.schedule_cache
            .get_or_derive(key, || {
                CollectiveSchedule::ring(&topo, p.coll.op, p.coll.size, &rank.config.channel_rings)
            })
            .tasks_from_gpu(rank.gpu)
    } else {
        CollectiveSchedule::ring(&w.topo, p.coll.op, p.coll.size, &rank.config.channel_rings)
            .tasks_from_gpu(rank.gpu)
    };
    let tokens = w.register_launch(p.coll.comm, p.seq, epoch, rank.size(), local.len());
    w.trace
        .launched(p.coll.comm, rank.rank, p.seq, rank.config.epoch, w.clock);
    for ((channel, task), token) in local.into_iter().zip(tokens) {
        match task {
            EdgeTask::IntraHost { bytes, .. } => {
                let stream = ensure_stream(rank, channel, w);
                let bandwidth = w.devices.config().intra_host_bandwidth;
                w.device_enqueue(
                    stream,
                    StreamOp::Transfer {
                        bytes,
                        bandwidth,
                        token,
                    },
                );
            }
            EdgeTask::InterHost {
                src_nic,
                dst_nic,
                bytes,
                ..
            } => {
                let route = match rank.config.routes.get(channel, src_nic, dst_nic) {
                    Some(r) => RouteChoice::Pinned(r),
                    None => RouteChoice::Ecmp {
                        hash: rank
                            .config
                            .ecmp_hash(p.coll.comm, channel, src_nic, dst_nic),
                    },
                };
                w.send_to_transport(
                    src_nic,
                    TransportMsg::Send {
                        app: rank.app,
                        comm: p.coll.comm,
                        seq: p.seq,
                        token,
                        src_nic,
                        dst_nic,
                        bytes,
                        route,
                    },
                );
            }
        }
    }
}

impl Engine<World> for ProxyEngine {
    fn progress(&mut self, w: &mut World) -> Poll {
        // A crashed host freezes its proxies (plan-gated; no check at all
        // on the fault-free path).
        if w.fault_plan.is_some() && w.health.is_host_down(w.topo.host_of_gpu(self.gpu)) {
            return Poll::Idle;
        }
        let mut progressed = false;
        // Drain visible inbox messages.
        loop {
            let now = w.clock;
            let Some(msg) = w.proxy_inbox[self.gpu.index()].pop(now) else {
                break;
            };
            self.handle_msg(w, msg);
            progressed = true;
        }
        // Advance every communicator with a rank on this GPU (the per-GPU
        // index spares the cluster-wide scan).
        let keys: Vec<CommunicatorId> = w.comms_on_gpu(self.gpu).to_vec();
        for comm in keys {
            progressed |= self.step_comm(w, comm);
        }
        if progressed {
            Poll::Progressed
        } else {
            Poll::Idle
        }
    }

    /// Read phase: pre-derive collective schedules for this GPU's pending
    /// launches that would miss the world schedule cache. This is the
    /// proxy's expensive pure computation — ring canonicalization and
    /// chunk/edge derivation — hoisted onto worker threads. Everything
    /// read here (communicator queues, configs, the cache index) is
    /// frozen for the wave; everything mutated by `progress` (sequence
    /// numbers, queues, trace, RNG) stays in the commit phase.
    fn plan(&self, w: &World) -> Option<EnginePlan> {
        if !w.svc.cache_schedules {
            return None;
        }
        let mut schedules: Vec<(ScheduleKey, CollectiveSchedule)> = Vec::new();
        for &comm in w.comms_on_gpu(self.gpu) {
            let rank = &w.comms[&(comm, self.gpu)];
            // The next launch on this rank uses the queue head under the
            // rank's current rings. Over-approximating launch readiness is
            // fine: the derivation is keyed and cached, so at worst we
            // derive one poll early.
            let Some(p) = rank.queue.front() else {
                continue;
            };
            let key =
                ScheduleKey::for_ring(&w.topo, p.coll.op, p.coll.size, &rank.config.channel_rings);
            if w.schedule_cache.contains(&key) || schedules.iter().any(|(k, _)| *k == key) {
                continue;
            }
            let s = CollectiveSchedule::ring(
                &w.topo,
                p.coll.op,
                p.coll.size,
                &rank.config.channel_rings,
            );
            schedules.push((key, s));
        }
        if schedules.is_empty() {
            None
        } else {
            Some(EnginePlan::new(ProxyPlan { schedules }))
        }
    }

    /// Commit phase: publish the off-thread derivations into the world
    /// cache (no-ops for keys that got there first), then run the normal
    /// in-place `progress` — whose `launch_tasks` now hits the cache
    /// where the serial path would have derived inline.
    fn progress_planned(&mut self, w: &mut World, plan: EnginePlan) -> Poll {
        if let Some(p) = plan.downcast::<ProxyPlan>() {
            for (key, schedule) in p.schedules {
                w.schedule_cache.insert_derived(key, schedule);
            }
        }
        self.progress(w)
    }

    fn wake_when(&self, w: &World) -> Wake {
        let plan = w.fault_plan.is_some();
        // Frozen on a crashed host: only a health event (HostUp) can
        // change anything this engine would do.
        if plan && w.health.is_host_down(w.topo.host_of_gpu(self.gpu)) {
            return Wake::on(vec![resources::health_channel()]);
        }
        let mut ws = WakeSet::new();
        ws.watch(resources::proxy_inbox(self.gpu.index() as u32));
        ws.deadline_opt(w.proxy_inbox[self.gpu.index()].next_visible());
        if !plan {
            // Installing a plan arms the liveness/gossip timers below.
            ws.watch(resources::fault_plan_installed());
        }
        let mut hosts_comms = false;
        for &comm in w.comms_on_gpu(self.gpu) {
            let rank = &w.comms[&(comm, self.gpu)];
            hosts_comms = true;
            // Token completions, failures, and aborts for this comm.
            ws.watch(resources::progress(comm));
            // Reconnect gate after an applied reconfiguration.
            if w.clock < rank.resume_at {
                ws.deadline(rank.resume_at);
            }
            if plan {
                // Gossip re-send while the barrier AllGather is stalled.
                if let Some(since) = rank.barrier_since {
                    ws.deadline(since + w.svc.gossip_retry);
                }
                // Liveness check for a launched, unfinished collective.
                if let Some(inf) = &rank.inflight {
                    if let (true, Some(at)) = (inf.launched, inf.launched_at) {
                        let grace = w
                            .svc
                            .liveness_timeout
                            .mul_f64(f64::from(inf.stall_reports + 1));
                        ws.deadline(at + grace);
                    }
                }
            }
        }
        if hosts_comms {
            // Dependency events and comm-event records complete on device
            // streams, which carry no per-comm attribution.
            ws.watch(resources::device_activity(self.gpu.index() as u32));
        }
        ws.build()
    }

    /// A proxy touches its inbox, its GPU's device streams, its ranks'
    /// completion queues, the shared progress resource of every
    /// communicator it hosts (which transitively groups the proxies of
    /// one communicator — they genuinely exchange barrier gossip), the
    /// health channel, and the transport inboxes of its host's NICs,
    /// where launched inter-host edges are sent.
    fn footprint(&self, w: &World) -> Footprint {
        let host = w.topo.host_of_gpu(self.gpu);
        let mut rs = vec![
            resources::proxy_inbox(self.gpu.index() as u32),
            resources::device_activity(self.gpu.index() as u32),
            resources::fault_plan_installed(),
            resources::health_channel(),
        ];
        for &comm in w.comms_on_gpu(self.gpu) {
            rs.push(resources::progress(comm));
            rs.push(resources::endpoint_comp(
                w.comms[&(comm, self.gpu)].endpoint as u32,
            ));
        }
        for nic in w.topo.nics() {
            if nic.host == host {
                rs.push(resources::transport_inbox(nic.id.index() as u32));
            }
        }
        Footprint::Resources(rs)
    }

    fn name(&self) -> String {
        format!("proxy({})", self.gpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccs_collectives::ReduceKind;

    #[test]
    fn buffer_demands_follow_nccl_root_semantics() {
        let s = Bytes::mib(8);
        let n = 4;
        // Symmetric ops are rank-independent.
        for rank in 0..n {
            assert_eq!(
                buffer_demands(CollectiveOp::AllReduce(ReduceKind::Sum), s, n, rank),
                (s, s)
            );
            assert_eq!(
                buffer_demands(CollectiveOp::AllGather, s, n, rank),
                (s / n as u64, s)
            );
            assert_eq!(
                buffer_demands(CollectiveOp::ReduceScatter(ReduceKind::Sum), s, n, rank),
                (s, s / n as u64)
            );
        }
        // Broadcast: send buffer significant only at the root.
        let bcast = CollectiveOp::Broadcast { root: 2 };
        assert_eq!(buffer_demands(bcast, s, n, 2), (s, s));
        assert_eq!(buffer_demands(bcast, s, n, 0), (Bytes::ZERO, s));
        // Reduce: recv buffer significant only at the root.
        let reduce = CollectiveOp::Reduce {
            root: 1,
            kind: ReduceKind::Sum,
        };
        assert_eq!(buffer_demands(reduce, s, n, 1), (s, s));
        assert_eq!(buffer_demands(reduce, s, n, 3), (s, Bytes::ZERO));
    }
}
