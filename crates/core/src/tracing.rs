//! Collective tracing (the management-plane observability of §4.3).
//!
//! The service records, per rank, when each collective was issued (reached
//! the proxy), launched (its transfers started) and completed. The
//! controller's TS policy consumes these records to find a prioritized
//! application's idle cycles; experiments use them for JCT and bandwidth
//! accounting.

use mccs_collectives::CollectiveOp;
use mccs_ipc::{AppId, CommunicatorId};
use mccs_sim::{Bytes, Nanos};
use std::collections::HashMap;

/// One rank's view of one collective.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// Owning application.
    pub app: AppId,
    /// Communicator.
    pub comm: CommunicatorId,
    /// Rank within the communicator.
    pub rank: usize,
    /// Sequence number.
    pub seq: u64,
    /// Operation.
    pub op: CollectiveOp,
    /// Buffer size.
    pub size: Bytes,
    /// Configuration epoch the collective executed under.
    pub epoch: u64,
    /// When the proxy sequenced it.
    pub issued_at: Nanos,
    /// When its transfers were launched.
    pub launched_at: Option<Nanos>,
    /// When it completed.
    pub completed_at: Option<Nanos>,
    /// When the service cleanly failed it to the tenant (recovery
    /// exhausted); mutually exclusive with `completed_at`.
    pub failed_at: Option<Nanos>,
}

impl TraceRecord {
    /// Issue-to-completion latency, if complete.
    pub fn latency(&self) -> Option<Nanos> {
        self.completed_at.map(|c| c - self.issued_at)
    }

    /// Issue-to-clean-failure duration, if the service failed this
    /// collective back to the tenant. A failed collective still cost the
    /// tenant this much wall-clock — JCT reports must count it, not
    /// silently drop the record.
    pub fn failure_latency(&self) -> Option<Nanos> {
        self.failed_at.map(|f| f - self.issued_at)
    }

    /// The duration to whichever terminal outcome this collective
    /// reached, tagged with whether it failed: `(duration, failed)`.
    /// `None` while still in flight.
    pub fn outcome_latency(&self) -> Option<(Nanos, bool)> {
        match (self.completed_at, self.failed_at) {
            (Some(c), None) => Some((c - self.issued_at, false)),
            (None, Some(f)) => Some((f - self.issued_at, true)),
            (None, None) => None,
            (Some(_), Some(_)) => unreachable!("completion and clean failure are exclusive"),
        }
    }
}

/// Append-mostly store of trace records, indexed for updates.
#[derive(Default, Debug)]
pub struct TraceCollector {
    records: Vec<TraceRecord>,
    index: HashMap<(CommunicatorId, usize, u64), usize>,
}

impl TraceCollector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a newly sequenced collective.
    #[allow(clippy::too_many_arguments)]
    pub fn issued(
        &mut self,
        app: AppId,
        comm: CommunicatorId,
        rank: usize,
        seq: u64,
        op: CollectiveOp,
        size: Bytes,
        at: Nanos,
    ) {
        let key = (comm, rank, seq);
        assert!(
            !self.index.contains_key(&key),
            "duplicate trace issue for {comm} rank {rank} seq {seq}"
        );
        self.index.insert(key, self.records.len());
        self.records.push(TraceRecord {
            app,
            comm,
            rank,
            seq,
            op,
            size,
            epoch: 0,
            issued_at: at,
            launched_at: None,
            completed_at: None,
            failed_at: None,
        });
    }

    /// Record a launch (and the epoch it executed under).
    pub fn launched(&mut self, comm: CommunicatorId, rank: usize, seq: u64, epoch: u64, at: Nanos) {
        let r = self.get_mut(comm, rank, seq);
        r.epoch = epoch;
        r.launched_at = Some(at);
    }

    /// Record a completion.
    pub fn completed(&mut self, comm: CommunicatorId, rank: usize, seq: u64, at: Nanos) {
        let r = self.get_mut(comm, rank, seq);
        debug_assert!(r.launched_at.is_some(), "completed before launch");
        debug_assert!(r.failed_at.is_none(), "completed after clean failure");
        r.completed_at = Some(at);
    }

    /// Record a clean failure (the collective may or may not have launched
    /// on this rank — a rank can fail a queued collective another rank's
    /// transport already gave up on).
    pub fn failed(&mut self, comm: CommunicatorId, rank: usize, seq: u64, at: Nanos) {
        let r = self.get_mut(comm, rank, seq);
        debug_assert!(r.completed_at.is_none(), "failed after completion");
        r.failed_at = Some(at);
    }

    fn get_mut(&mut self, comm: CommunicatorId, rank: usize, seq: u64) -> &mut TraceRecord {
        let idx = *self
            .index
            .get(&(comm, rank, seq))
            .unwrap_or_else(|| panic!("no trace record for {comm} rank {rank} seq {seq}"));
        &mut self.records[idx]
    }

    /// All records.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records of one application.
    pub fn for_app(&self, app: AppId) -> Vec<&TraceRecord> {
        self.records.iter().filter(|r| r.app == app).collect()
    }

    /// Completed rank-0 records of one application, time-ordered — the
    /// canonical per-job collective timeline (rank 0 avoids counting each
    /// collective once per rank).
    pub fn timeline(&self, app: AppId) -> Vec<&TraceRecord> {
        let mut v: Vec<&TraceRecord> = self
            .records
            .iter()
            .filter(|r| r.app == app && r.rank == 0 && r.completed_at.is_some())
            .collect();
        v.sort_by_key(|r| r.issued_at);
        v
    }

    /// The gaps between consecutive completed collectives of an app's
    /// rank-0 timeline: `(gap_start, gap_len)` — the "idle cycles" TS
    /// schedules around.
    pub fn idle_gaps(&self, app: AppId) -> Vec<(Nanos, Nanos)> {
        let tl = self.timeline(app);
        let mut gaps = Vec::new();
        for pair in tl.windows(2) {
            let end = pair[0].completed_at.expect("filtered complete");
            let next = pair[1].issued_at;
            if next > end {
                gaps.push((end, next - end));
            }
        }
        gaps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccs_collectives::op::all_reduce_sum;

    fn collector_with(records: &[(u64, u64, u64)]) -> TraceCollector {
        // (seq, issued_us, completed_us)
        let mut t = TraceCollector::new();
        for &(seq, iss, comp) in records {
            t.issued(
                AppId(0),
                CommunicatorId(0),
                0,
                seq,
                all_reduce_sum(),
                Bytes::mib(1),
                Nanos::from_micros(iss),
            );
            t.launched(CommunicatorId(0), 0, seq, 0, Nanos::from_micros(iss));
            t.completed(CommunicatorId(0), 0, seq, Nanos::from_micros(comp));
        }
        t
    }

    #[test]
    fn lifecycle_updates() {
        let t = collector_with(&[(0, 10, 50)]);
        let r = &t.records()[0];
        assert_eq!(r.latency(), Some(Nanos::from_micros(40)));
        assert_eq!(r.failure_latency(), None);
        assert_eq!(r.outcome_latency(), Some((Nanos::from_micros(40), false)));
        assert_eq!(r.epoch, 0);
    }

    #[test]
    fn failed_collectives_expose_their_duration() {
        let mut t = TraceCollector::new();
        t.issued(
            AppId(0),
            CommunicatorId(0),
            0,
            0,
            all_reduce_sum(),
            Bytes::mib(1),
            Nanos::from_micros(10),
        );
        t.failed(CommunicatorId(0), 0, 0, Nanos::from_micros(70));
        let r = &t.records()[0];
        assert_eq!(r.latency(), None, "failed is not completed");
        assert_eq!(r.failure_latency(), Some(Nanos::from_micros(60)));
        assert_eq!(r.outcome_latency(), Some((Nanos::from_micros(60), true)));
        // In-flight records have no outcome yet.
        t.issued(
            AppId(0),
            CommunicatorId(0),
            0,
            1,
            all_reduce_sum(),
            Bytes::mib(1),
            Nanos::from_micros(80),
        );
        assert_eq!(t.records()[1].outcome_latency(), None);
    }

    #[test]
    #[should_panic(expected = "duplicate trace issue")]
    fn duplicate_issue_rejected() {
        let mut t = TraceCollector::new();
        for _ in 0..2 {
            t.issued(
                AppId(0),
                CommunicatorId(0),
                0,
                0,
                all_reduce_sum(),
                Bytes::mib(1),
                Nanos::ZERO,
            );
        }
    }

    #[test]
    fn idle_gaps_found() {
        // completions at 50 and issue of next at 150 -> gap (50, 100)
        let t = collector_with(&[(0, 10, 50), (1, 150, 200), (2, 200, 260)]);
        let gaps = t.idle_gaps(AppId(0));
        assert_eq!(
            gaps,
            vec![(Nanos::from_micros(50), Nanos::from_micros(100))]
        );
    }

    #[test]
    fn per_app_filtering() {
        let mut t = TraceCollector::new();
        t.issued(
            AppId(0),
            CommunicatorId(0),
            0,
            0,
            all_reduce_sum(),
            Bytes::mib(1),
            Nanos::ZERO,
        );
        t.issued(
            AppId(1),
            CommunicatorId(1),
            0,
            0,
            all_reduce_sum(),
            Bytes::mib(1),
            Nanos::ZERO,
        );
        assert_eq!(t.for_app(AppId(0)).len(), 1);
        assert_eq!(t.timeline(AppId(1)).len(), 0, "incomplete records excluded");
    }
}
