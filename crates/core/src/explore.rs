//! Seeded fault-interleaving exploration over the chaos driver.
//!
//! Pre-scripted `FaultPlan`s only reach interleavings someone thought to
//! author. The [`Explorer`] instead *searches*: it steps a cluster one
//! scheduler event at a time through a [`ChaosDriver`], and at every
//! decision point (the brink between two steps) a seeded RNG decides
//! whether to inject a fault and which — a partition mid-drain, a crash
//! racing recovery, a repair racing a detour. Each applied action is
//! recorded as a [`Decision`] `(index, time, action)`; because the
//! simulation is deterministic, replaying the decision trace — **without
//! the RNG** — reproduces the episode byte-for-byte (same
//! [`observable_digest`](crate::Cluster::observable_digest)), so any
//! interleaving the search finds is a permanent regression test.
//!
//! Every episode is judged by three oracles:
//! - **completed-xor-failed**: each `(communicator, seq)` must finish the
//!   same way on every rank, and nothing issued may be left unfinished
//!   at quiescence;
//! - **quiescence**: the run must go quiet before the configured
//!   deadline, else it is reported as a [`Verdict::Hang`] with the live
//!   engines named;
//! - **post-restart pin convergence**: when the fabric ends healthy with
//!   the controller up, every communicator the recovery engine ever
//!   steered must sit on the policy's healthy-fabric plan — a controller
//!   crash must not strand a detour.
//!
//! Faults that would make the oracles unsatisfiable by construction are
//! paired with *obligations*: a crashed host (or controller) is always
//! restarted a few decision points later, a control hold is always
//! released. (A permanently dead link needs no obligation — the
//! service's clean failure path is exactly what is under test.) If an
//! episode quiesces with obligations outstanding, they are force-applied
//! and the run continues.

use crate::chaos::ChaosDriver;
use crate::cluster::Cluster;
use crate::recovery::RecoveryPolicy;
use mccs_ipc::CommunicatorId;
use mccs_sim::{Nanos, Rng};
use mccs_topology::{graph, HostId, LinkId, RackId};
use std::collections::BTreeMap;

/// One fault action the explorer (or a test) can take at a decision
/// point, in terms of the [`ChaosDriver`] verbs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaosAction {
    /// Take a link down.
    LinkDown(LinkId),
    /// Repair a link.
    LinkUp(LinkId),
    /// Degrade a link to `milli`/1000 of line rate.
    Degrade {
        /// The degraded link.
        link: LinkId,
        /// Remaining capacity in thousandths (1000 = repair).
        milli: u32,
    },
    /// Crash a host (always paired with a `RestartHost` obligation).
    CrashHost(HostId),
    /// Warm-restart a crashed host.
    RestartHost(HostId),
    /// Cut a rack's leaf off from the spines.
    PartitionRack(RackId),
    /// Undo a rack partition.
    RepairRack(RackId),
    /// Park all control-ring traffic (paired with a release obligation).
    HoldControl,
    /// Release parked control-ring traffic.
    ReleaseControl,
    /// Crash the controller (always paired with a `RestartController`
    /// obligation — a dead controller can never recover stalled work, so
    /// quiescence would be unsatisfiable).
    CrashController,
    /// Restart the crashed controller (checkpoint restore + reconcile).
    RestartController,
}

impl ChaosAction {
    /// Apply this action through the driver at the current instant.
    pub fn apply(&self, driver: &mut ChaosDriver<'_>) {
        match *self {
            ChaosAction::LinkDown(l) => driver.link_down(l),
            ChaosAction::LinkUp(l) => driver.link_up(l),
            ChaosAction::Degrade { link, milli } => driver.degrade(link, milli),
            ChaosAction::CrashHost(h) => driver.crash_host(h),
            ChaosAction::RestartHost(h) => driver.restart_host(h),
            ChaosAction::PartitionRack(r) => {
                driver.partition_rack(r);
            }
            ChaosAction::RepairRack(r) => {
                driver.repair_rack(r);
            }
            ChaosAction::HoldControl => driver.hold_control(),
            ChaosAction::ReleaseControl => driver.release_control(),
            ChaosAction::CrashController => driver.crash_controller(),
            ChaosAction::RestartController => driver.restart_controller(),
        }
    }
}

/// One recorded choice: at decision point `index` (the count of
/// [`ChaosDriver::step`] returns so far), with the clock at `at`, the
/// explorer applied `action`. The trace of these is the episode's full
/// replay script.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Decision {
    /// The decision-point ordinal the action was taken at.
    pub index: u64,
    /// The virtual clock at that point (recorded for humans; replay is
    /// driven by `index`).
    pub at: Nanos,
    /// What was done.
    pub action: ChaosAction,
}

/// Search knobs.
#[derive(Clone, Copy, Debug)]
pub struct ExplorerConfig {
    /// Master seed; episode `i` derives its own stream from it.
    pub seed: u64,
    /// Episodes per [`Explorer::run`].
    pub episodes: u32,
    /// Probability of injecting a fault at each decision point (within
    /// the horizon, below the action cap).
    pub inject_prob: f64,
    /// Maximum RNG-chosen actions per episode (obligations don't count).
    pub max_actions: usize,
    /// No new faults after this virtual time — the tail of the episode
    /// exercises recovery, fail-back, and clean failure to quiescence.
    pub horizon: Nanos,
    /// Hang detector: an episode still active past this is a
    /// [`Verdict::Hang`].
    pub deadline: Nanos,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        ExplorerConfig {
            seed: 0x4d43_4353, // "MCCS"
            episodes: 6,
            inject_prob: 0.05,
            max_actions: 4,
            horizon: Nanos::from_millis(40),
            deadline: Nanos::from_secs(30),
        }
    }
}

/// How an episode ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Quiesced with the completed-xor-failed oracle satisfied.
    Ok {
        /// `(comm, seq)` groups that completed on every rank.
        completed: usize,
        /// `(comm, seq)` groups that failed cleanly on every rank.
        failed: usize,
    },
    /// Still active at the deadline.
    Hang {
        /// The next scheduled event past the deadline.
        next_event: Nanos,
        /// Engines still live.
        live_engines: Vec<String>,
    },
    /// The completed-xor-failed oracle was violated.
    Violation {
        /// Human-readable description of the violated invariant.
        detail: String,
    },
}

impl Verdict {
    /// Whether the episode passed both oracles.
    pub fn is_ok(&self) -> bool {
        matches!(self, Verdict::Ok { .. })
    }
}

/// The outcome of one episode (or one replay).
#[derive(Clone, Debug)]
pub struct EpisodeReport {
    /// The episode's seed (echoed into replays for reporting).
    pub seed: u64,
    /// Every action taken, in order — the replay script.
    pub trace: Vec<Decision>,
    /// [`observable_digest`](crate::Cluster::observable_digest) of the
    /// final state. Replaying `trace` must reproduce this exactly.
    pub digest: u64,
    /// How the episode ended.
    pub verdict: Verdict,
    /// Total decision points encountered.
    pub decisions_seen: u64,
}

/// Derive episode `i`'s seed from the master seed (splitmix-style odd
/// multiplier so nearby episodes get unrelated streams).
pub fn episode_seed(master: u64, i: u32) -> u64 {
    master ^ (u64::from(i) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// A seeded random searcher over fault interleavings. `build` must
/// produce a fresh, identically-configured cluster per call — episode
/// determinism (and therefore replay) hinges on it.
pub struct Explorer<F: FnMut() -> Cluster> {
    cfg: ExplorerConfig,
    build: F,
}

impl<F: FnMut() -> Cluster> Explorer<F> {
    /// A new explorer over `build` with the given knobs.
    pub fn new(cfg: ExplorerConfig, build: F) -> Self {
        Explorer { cfg, build }
    }

    /// Run `cfg.episodes` seeded episodes and return their reports.
    pub fn run(&mut self) -> Vec<EpisodeReport> {
        (0..self.cfg.episodes)
            .map(|i| self.run_episode(episode_seed(self.cfg.seed, i)))
            .collect()
    }

    /// Run one seeded episode: the RNG explores, every action is
    /// recorded. Same seed, same build → same report (digest included).
    pub fn run_episode(&mut self, seed: u64) -> EpisodeReport {
        self.drive(seed, None)
    }

    /// Deterministically replay a recorded decision trace: the RNG is
    /// never consulted — actions are applied by decision-point index.
    /// Must reproduce the recording's digest byte-for-byte.
    pub fn replay(&mut self, seed: u64, trace: &[Decision]) -> EpisodeReport {
        self.drive(seed, Some(trace))
    }

    fn drive(&mut self, seed: u64, script: Option<&[Decision]>) -> EpisodeReport {
        let cfg = self.cfg;
        let mut cluster = (self.build)();
        let mut driver = ChaosDriver::new(&mut cluster);
        let mut rng = Rng::seed_from(seed);
        let mut trace: Vec<Decision> = Vec::new();
        // Outstanding forced follow-ups: `(due decision index, action)`.
        let mut obligations: Vec<(u64, ChaosAction)> = Vec::new();
        let mut injected = 0usize;
        let mut index: u64 = 0;
        let verdict = loop {
            let stepped = driver.step();
            index += 1;
            let now = driver.now();
            let actions: Vec<ChaosAction> = match script {
                Some(s) => s
                    .iter()
                    .filter(|d| d.index == index)
                    .map(|d| d.action.clone())
                    .collect(),
                None => match stepped {
                    Some(_) => decide(
                        &cfg,
                        &mut rng,
                        &driver,
                        index,
                        now,
                        &mut obligations,
                        &mut injected,
                    ),
                    // Quiesced with obligations outstanding: force them
                    // all now so the oracles stay satisfiable.
                    None => obligations.drain(..).map(|(_, a)| a).collect(),
                },
            };
            if let Some(t) = stepped {
                if t > cfg.deadline {
                    break Verdict::Hang {
                        next_event: t,
                        live_engines: driver.cluster().live_engine_names(),
                    };
                }
            } else if actions.is_empty() {
                break oracle(driver.cluster());
            }
            for a in actions {
                a.apply(&mut driver);
                trace.push(Decision {
                    index,
                    at: now,
                    action: a,
                });
            }
        };
        let digest = cluster.observable_digest();
        EpisodeReport {
            seed,
            trace,
            digest,
            verdict,
            decisions_seen: index,
        }
    }
}

/// The exploration policy at one decision point: due obligations first,
/// then (within horizon and budget) maybe one sampled fault.
fn decide(
    cfg: &ExplorerConfig,
    rng: &mut Rng,
    driver: &ChaosDriver<'_>,
    index: u64,
    now: Nanos,
    obligations: &mut Vec<(u64, ChaosAction)>,
    injected: &mut usize,
) -> Vec<ChaosAction> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < obligations.len() {
        if obligations[i].0 <= index {
            out.push(obligations.remove(i).1);
        } else {
            i += 1;
        }
    }
    if now <= cfg.horizon && *injected < cfg.max_actions && rng.chance(cfg.inject_prob) {
        if let Some((action, obligation)) = sample(rng, driver, index) {
            *injected += 1;
            if let Some(ob) = obligation {
                obligations.push(ob);
            }
            out.push(action);
        }
    }
    out
}

/// Sample one applicable fault from the current world state, with its
/// obligation when the fault would otherwise make the oracles
/// unsatisfiable.
#[allow(clippy::type_complexity)]
fn sample(
    rng: &mut Rng,
    driver: &ChaosDriver<'_>,
    index: u64,
) -> Option<(ChaosAction, Option<(u64, ChaosAction)>)> {
    let w = &driver.cluster().world;
    let fabric_up: Vec<LinkId> = w
        .topo
        .links()
        .iter()
        .filter(|l| {
            matches!(l.from, graph::Endpoint::Switch(_))
                && matches!(l.to, graph::Endpoint::Switch(_))
                && w.net.link_up(l.id)
        })
        .map(|l| l.id)
        .collect();
    let down: Vec<LinkId> = w
        .topo
        .links()
        .iter()
        .map(|l| l.id)
        .filter(|&l| !w.net.link_up(l))
        .collect();
    let hosts_up: Vec<HostId> = w
        .topo
        .hosts()
        .iter()
        .map(|h| h.id)
        .filter(|&h| !w.health.is_host_down(h))
        .collect();
    let racks: Vec<RackId> = {
        let mut r: Vec<RackId> = w.topo.hosts().iter().map(|h| h.rack).collect();
        r.sort_unstable();
        r.dedup();
        r
    };
    let mut menu: Vec<u8> = Vec::new();
    if !fabric_up.is_empty() {
        menu.push(0); // LinkDown
        menu.push(1); // Degrade
    }
    if !down.is_empty() {
        menu.push(2); // LinkUp
    }
    if !hosts_up.is_empty() {
        menu.push(3); // CrashHost
    }
    if !racks.is_empty() {
        menu.push(4); // PartitionRack
    }
    if !driver.is_control_held() {
        menu.push(5); // HoldControl
    }
    if !driver.is_controller_down() {
        menu.push(6); // CrashController
    }
    if menu.is_empty() {
        return None;
    }
    match *rng.choose(&menu) {
        0 => Some((ChaosAction::LinkDown(*rng.choose(&fabric_up)), None)),
        1 => {
            let milli = [250u32, 500, 750][rng.index(3)];
            Some((
                ChaosAction::Degrade {
                    link: *rng.choose(&fabric_up),
                    milli,
                },
                None,
            ))
        }
        2 => Some((ChaosAction::LinkUp(*rng.choose(&down)), None)),
        3 => {
            let h = *rng.choose(&hosts_up);
            Some((
                ChaosAction::CrashHost(h),
                Some((index + rng.range(5, 60), ChaosAction::RestartHost(h))),
            ))
        }
        4 => Some((ChaosAction::PartitionRack(*rng.choose(&racks)), None)),
        5 => Some((
            ChaosAction::HoldControl,
            Some((index + rng.range(3, 30), ChaosAction::ReleaseControl)),
        )),
        6 => Some((
            ChaosAction::CrashController,
            Some((index + rng.range(5, 60), ChaosAction::RestartController)),
        )),
        _ => unreachable!(),
    }
}

/// The completed-xor-failed oracle over the tenant log at quiescence.
fn oracle(cluster: &Cluster) -> Verdict {
    let log = &cluster.world.tenant_log;
    let unfinished = log.unfinished();
    if unfinished > 0 {
        return Verdict::Violation {
            detail: format!("{unfinished} collectives issued but never finished"),
        };
    }
    let mut groups: BTreeMap<(CommunicatorId, u64), (usize, usize)> = BTreeMap::new();
    for r in log.records() {
        let e = groups.entry((r.comm, r.seq)).or_insert((0, 0));
        if r.failed {
            e.1 += 1;
        } else {
            e.0 += 1;
        }
    }
    let mut completed = 0;
    let mut failed = 0;
    for ((comm, seq), (c, f)) in &groups {
        if *c > 0 && *f > 0 {
            return Verdict::Violation {
                detail: format!(
                    "collective {comm:?} seq {seq} completed on {c} ranks but failed on {f}"
                ),
            };
        }
        if *c > 0 {
            completed += 1;
        } else {
            failed += 1;
        }
    }
    if let Some(detail) = pin_divergence(cluster) {
        return Verdict::Violation { detail };
    }
    Verdict::Ok { completed, failed }
}

/// The post-restart convergence oracle: with the controller up and the
/// fabric fully healthy at quiescence, every communicator the recovery
/// engine ever steered (a `RecoveryIssued` or `FailbackIssued` in the
/// event log) must sit on a fixed point of the recovery policy — the
/// plan re-derived from its current configuration changes nothing. This
/// is what "the restarted controller converged" means observably: after
/// `repair_all` + restart, pins equal the healthy-fabric plan. Returns a
/// violation description, or `None` when converged (or the precondition
/// doesn't hold — a permanently broken fabric legitimately keeps its
/// detours).
fn pin_divergence(cluster: &Cluster) -> Option<String> {
    let w = &cluster.world;
    let healthy = !w.controller.down
        && w.health.links_down().next().is_none()
        && w.health.hosts_down().next().is_none()
        && w.health.links_degraded().next().is_none();
    if !healthy {
        return None;
    }
    let mut steered: Vec<CommunicatorId> = w
        .health
        .events()
        .iter()
        .filter_map(|e| match *e {
            crate::health::FailureEvent::RecoveryIssued { comm, .. }
            | crate::health::FailureEvent::FailbackIssued { comm, .. } => Some(comm),
            _ => None,
        })
        .collect();
    steered.sort_unstable();
    steered.dedup();
    for comm in steered {
        let ranks: Vec<_> = w
            .comms
            .iter()
            .filter(|((c, _), _)| *c == comm)
            .map(|(_, r)| r)
            .collect();
        let Some(first) = ranks.first() else {
            continue; // destroyed — nothing left to converge
        };
        if ranks.len() != first.world_gpus.len() {
            continue;
        }
        let current = &first.config;
        let plan = match &w.recovery_policy {
            Some(p) => p.plan(w, comm, current, &first.world_gpus),
            None => crate::recovery::DetourPolicy.plan(w, comm, current, &first.world_gpus),
        };
        let Some((rings, routes)) = plan else {
            continue;
        };
        if rings != current.channel_rings || routes != current.routes {
            return Some(format!(
                "{comm:?} pins diverge from the healthy-fabric plan at quiescence \
                 (epoch {}): recovery state was lost across a controller restart",
                current.epoch
            ));
        }
    }
    None
}
