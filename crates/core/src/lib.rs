//! # mccs-core — the MCCS service
//!
//! The paper's primary contribution: collective communication as a
//! provider-controlled host service. Tenant applications talk NCCL-shaped
//! APIs to a shim (`mccs-shim`); this crate is everything on the other
//! side of the command queue:
//!
//! * **frontend engines** ([`frontend`]) — one per application per host;
//!   own tenant GPU-buffer allocation (IPC handles, validation) and route
//!   commands to proxies;
//! * **proxy engines** ([`proxy`]) — one per GPU; own communicator state,
//!   sequence collectives, compute ring schedules from the provider's
//!   configuration, drive intra-host channel transfers, and run the
//!   **dynamic reconfiguration protocol** of Figure 4 (control-ring
//!   AllGather barrier over last-launched sequence numbers);
//! * **transport engines** ([`transport`]) — one per NIC; turn inter-host
//!   edge tasks into network flows with explicit route pins (FFA/PFA) and
//!   enforce time-window traffic schedules (TS);
//! * **management API** ([`mgmt`]) — the provider/controller surface:
//!   communicator inventory, runtime reconfiguration, traffic windows,
//!   and collective tracing.
//!
//! Everything runs in virtual time inside a [`cluster::Cluster`]: a
//! discrete-event world ([`world::World`]) advancing the network
//! (`mccs-netsim`), the GPUs (`mccs-device`), the IPC queues (`mccs-ipc`)
//! and the engine pool together.
//!
//! ## Modeling notes (vs. the real system)
//!
//! * Collective completion is tracked by a shared progress registry
//!   ([`world::CollectiveProgress`]) rather than per-rank kernel plumbing —
//!   the flow-level approximation the paper's own §6.5 simulator makes.
//! * "Connections" are per-flow; reconfiguration teardown/re-setup cost is
//!   modeled as a configurable pause ([`config::ServiceConfig`]).

pub mod app;
pub mod chaos;
pub mod cluster;
pub mod config;
pub mod error;
pub mod explore;
pub mod flat;
pub mod frontend;
pub mod health;
pub mod messages;
pub mod mgmt;
pub mod proxy;
pub mod qos;
pub mod recovery;
pub mod tracing;
pub mod transport;
pub mod world;

pub use chaos::ChaosDriver;
pub use cluster::{Cluster, ClusterConfig, ClusterHang};
pub use config::{CollectiveConfig, DegradationPolicy, RouteMap, ServiceConfig};
pub use error::ServiceError;
pub use explore::{
    episode_seed, ChaosAction, Decision, EpisodeReport, Explorer, ExplorerConfig, Verdict,
};
pub use health::{
    FailureEvent, HealthCounters, HealthDelivery, HealthRegistry, HealthSnapshot,
    HealthSubscription,
};
pub use mgmt::CommInfo;
pub use qos::TrafficWindows;
pub use recovery::{comm_min_route_weight, DetourPolicy, RecoveryEngine, RecoveryPolicy};
pub use tracing::{TraceCollector, TraceRecord};
pub use world::{Controller, ControllerState, ControllerStats, DrainObligation, World};
