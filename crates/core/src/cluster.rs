//! The cluster harness: builds a world, spawns service engines, attaches
//! tenant applications, and drives everything in virtual time.

use crate::app::AppEngine;
use crate::config::ServiceConfig;
use crate::frontend::FrontendEngine;
use crate::mgmt::Management;
use crate::proxy::ProxyEngine;
use crate::recovery::{RecoveryEngine, RecoveryPolicy};
use crate::transport::TransportEngine;
use crate::world::{resources, Endpoint, World};
use mccs_device::DeviceConfig;
use mccs_ipc::{AppId, IpcConfig, LatencyQueue};
use mccs_netsim::{FaultEvent, FaultPlan};
use mccs_shim::AppProgram;
use mccs_sim::{EngineId, Nanos, ResourceId, RuntimePool};
use mccs_topology::{GpuId, Topology};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Knobs for a cluster run.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// GPU cost model.
    pub device: DeviceConfig,
    /// IPC latency model.
    pub ipc: IpcConfig,
    /// Service tuning.
    pub service: ServiceConfig,
    /// Master seed (placement, jitter — everything derives from this).
    pub seed: u64,
    /// Spawn the per-GPU proxy and per-NIC transport engines. Disable for
    /// pure library-mode simulations (the §6.5 at-scale study) where no
    /// tenant uses the service — at 768 GPUs the idle service engines
    /// dominate poll time otherwise.
    pub service_engines: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            device: DeviceConfig::default(),
            ipc: IpcConfig::default(),
            service: ServiceConfig::default(),
            seed: MCCS_DEFAULT_SEED,
            service_engines: true,
        }
    }
}

/// "MCCS" in ASCII — the default master seed.
const MCCS_DEFAULT_SEED: u64 = 0x4d43_4353;

/// The cluster failed to quiesce by the deadline — the structured form of
/// the hang detector, returned by
/// [`Cluster::try_run_until_quiescent`] so explorers can treat a hang as
/// a verdict instead of a panic.
#[derive(Clone, Debug)]
pub struct ClusterHang {
    /// The next scheduled event past the deadline.
    pub next_event: Nanos,
    /// Names of the engines still live at the deadline.
    pub live_engines: Vec<String>,
}

/// Rack index → event shard: rack r lives on shard r+1 (shard 0 is the
/// shared/global bucket — controller, recovery, cross-rack resources),
/// clamped to the shared shard when the pool has fewer shards than racks.
/// Mirrors `World::rack_shard` so pool and event-queue attribution agree.
fn rack_to_shard(rack: u32, shards: usize) -> usize {
    let s = rack as usize + 1;
    if s < shards {
        s
    } else {
        0
    }
}

/// A full simulated deployment: topology + service + tenants.
pub struct Cluster {
    /// The shared world (public for experiment harnesses and tests).
    pub world: World,
    pool: RuntimePool<World>,
    next_app: u32,
    /// Per-engine home rack, kept so a reshard can replay the attribution
    /// at the new shard count (rack→shard clamps differently per count).
    engine_racks: Vec<(EngineId, u32)>,
    /// Per-resource home rack, same replay purpose.
    resource_racks: Vec<(ResourceId, u32)>,
}

impl Cluster {
    /// Build a cluster over `topo`: one proxy engine per GPU, one
    /// transport engine per NIC, no tenants yet.
    pub fn new(topo: Arc<Topology>, cfg: ClusterConfig) -> Self {
        let sim_workers = cfg.service.sim_workers;
        let sim_shards = cfg.service.sim_shards;
        let mut world = World::new(
            Arc::clone(&topo),
            cfg.device,
            cfg.ipc,
            cfg.service,
            cfg.seed,
        );
        world.net.set_workers(sim_workers);
        let mut pool: RuntimePool<World> = RuntimePool::new();
        pool.set_workers(sim_workers);
        // Resolve the shard count: 0 = auto (one shard per rack plus the
        // shared shard 0), anything else explicit. 1 is the single-queue
        // oracle path.
        let shards = if sim_shards == 0 {
            topo.rack_count() + 1
        } else {
            sim_shards
        };
        pool.set_shards(shards);
        world.set_event_shards(shards);
        let mut engine_racks: Vec<(EngineId, u32)> = Vec::new();
        let mut resource_racks: Vec<(ResourceId, u32)> = Vec::new();
        if cfg.service_engines {
            for gpu in topo.gpus() {
                let rack = topo.rack_of(topo.host_of_gpu(gpu.id)).index() as u32;
                let id = pool.spawn_par(Box::new(ProxyEngine::new(gpu.id)));
                engine_racks.push((id, rack));
                resource_racks.push((resources::proxy_inbox(gpu.id.0), rack));
                resource_racks.push((resources::device_activity(gpu.id.0), rack));
            }
            for nic in topo.nics() {
                let rack = topo.rack_of(nic.host).index() as u32;
                let id = pool.spawn_par(Box::new(TransportEngine::new(nic.id)));
                engine_racks.push((id, rack));
                resource_racks.push((resources::transport_inbox(nic.id.0), rack));
                resource_racks.push((resources::transport_flow(nic.id.0), rack));
            }
            // The failure monitor. Polls Idle instantly unless a fault
            // plan is installed, so fault-free runs pay nothing for it.
            // Lives on the shared shard 0 — its work is cross-rack.
            pool.spawn(Box::new(RecoveryEngine::new()));
        }
        let mut cluster = Cluster {
            world,
            pool,
            next_app: 0,
            engine_racks,
            resource_racks,
        };
        cluster.apply_shard_attribution();
        cluster
    }

    /// Replay every recorded engine/resource home-rack assignment against
    /// the pool's current shard count (rack r → shard r+1, clamped to the
    /// shared shard 0 when out of range).
    fn apply_shard_attribution(&mut self) {
        let shards = self.pool.shards();
        for &(id, rack) in &self.engine_racks {
            self.pool
                .assign_engine_shard(id, rack_to_shard(rack, shards));
        }
        for &(r, rack) in &self.resource_racks {
            self.pool
                .set_resource_shard(r.kind(), r.index(), rack_to_shard(rack, shards));
        }
    }

    /// Attach a tenant application: one `(GPU, program)` pair per rank.
    /// Creates the rank endpoints, one frontend engine per occupied host,
    /// and one app engine per rank. Returns the application id.
    pub fn add_app(&mut self, name: &str, ranks: Vec<(GpuId, Box<dyn AppProgram>)>) -> AppId {
        assert!(!ranks.is_empty(), "application needs at least one rank");
        let app = AppId(self.next_app);
        self.next_app += 1;
        self.world.app_names.push(name.to_owned());
        let cap = self.world.ipc.queue_capacity;
        let shards = self.pool.shards();
        let mut per_host: BTreeMap<mccs_topology::HostId, Vec<usize>> = BTreeMap::new();
        for (rank, (gpu, program)) in ranks.into_iter().enumerate() {
            let endpoint = self.world.endpoints.len();
            let app_stream = self.world.devices.create_stream(gpu);
            let rng = self.world.rng.fork();
            self.world.endpoints.push(Endpoint {
                app,
                rank,
                gpu,
                app_stream,
                cmd: LatencyQueue::new(cap),
                comp: LatencyQueue::new(cap),
                rng,
                next_app_wake: None,
            });
            per_host
                .entry(self.world.topo.host_of_gpu(gpu))
                .or_default()
                .push(endpoint);
            let rack = self
                .world
                .topo
                .rack_of(self.world.topo.host_of_gpu(gpu))
                .index() as u32;
            let id = self.pool.spawn(Box::new(AppEngine::new(endpoint, program)));
            self.engine_racks.push((id, rack));
            self.pool
                .assign_engine_shard(id, rack_to_shard(rack, shards));
            let e = endpoint as u32;
            for r in [
                resources::endpoint_cmd(e),
                resources::endpoint_comp(e),
                resources::endpoint_cmd_space(e),
            ] {
                self.resource_racks.push((r, rack));
                self.pool
                    .set_resource_shard(r.kind(), r.index(), rack_to_shard(rack, shards));
            }
        }
        for (host, endpoints) in per_host {
            let rack = self.world.topo.rack_of(host).index() as u32;
            let id = self
                .pool
                .spawn_par(Box::new(FrontendEngine::new(app, host, endpoints)));
            self.engine_racks.push((id, rack));
            self.pool
                .assign_engine_shard(id, rack_to_shard(rack, shards));
        }
        app
    }

    /// Spawn an arbitrary engine into the pool (library-mode tenants such
    /// as the NCCL baseline, experiment drivers).
    pub fn spawn_engine(&mut self, engine: Box<dyn mccs_sim::Engine<World>>) {
        self.pool.spawn(engine);
    }

    /// Register an application name without shim endpoints (library-mode
    /// tenants) and get its id.
    pub fn register_app_name(&mut self, name: &str) -> AppId {
        let app = AppId(self.next_app);
        self.next_app += 1;
        self.world.app_names.push(name.to_owned());
        app
    }

    /// Install a deterministic fault schedule. All fault machinery —
    /// transport retry timers, proxy liveness checks, gossip re-sends,
    /// the recovery engine — activates only once a plan is installed;
    /// without one, runs are byte-identical to a build without fault
    /// support.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.world.install_fault_plan(plan);
    }

    /// Install a controller recovery policy consulted for corrective
    /// configurations after failures (default: the built-in detour policy).
    pub fn set_recovery_policy(&mut self, policy: Box<dyn RecoveryPolicy>) {
        self.world.recovery_policy = Some(policy);
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.world.clock
    }

    /// The management/controller surface.
    pub fn mgmt(&mut self) -> Management<'_> {
        Management::new(&mut self.world)
    }

    /// A digest of everything externally observable about this run: the
    /// trace records, the failure-event log, and the health counters.
    /// Two runs of the same scenario (same seed, same plan) must produce
    /// identical digests — the determinism gate CI enforces by running
    /// scenarios twice in separate processes and diffing the output.
    pub fn observable_digest(&self) -> u64 {
        use std::hash::{DefaultHasher, Hash, Hasher};
        let w = &self.world;
        let mut h = DefaultHasher::new();
        format!("{:?}", w.trace.records()).hash(&mut h);
        format!("{:?}", w.health.events()).hash(&mut h);
        format!("{:?}", w.health.counters).hash(&mut h);
        h.finish()
    }

    /// Run until virtual time `t` (or until the system quiesces earlier).
    pub fn run_until(&mut self, t: Nanos) {
        loop {
            self.pool.poll(&mut self.world);
            match self.world.next_time() {
                Some(next) if next <= t => self.world.advance_to(next),
                _ => break,
            }
        }
        if self.world.clock < t {
            self.world.advance_to(t);
            self.pool.poll(&mut self.world);
        }
        self.sync_scheduler_stats();
    }

    /// One scheduler round at the current instant (no time advance).
    pub fn poll_once(&mut self) {
        self.pool.poll(&mut self.world);
        self.sync_scheduler_stats();
    }

    /// One event step: poll every engine at the current instant, then
    /// advance the clock to the next scheduled event (firing any fault
    /// scripted there). Returns the new clock, or `None` when nothing is
    /// scheduled — the system has quiesced. The instant *between* two
    /// `step` calls is the chaos driver's and explorer's decision point:
    /// the world has arrived at a time but no engine has run there yet.
    pub fn step(&mut self) -> Option<Nanos> {
        self.pool.poll(&mut self.world);
        let next = self.world.next_time();
        if let Some(t) = next {
            self.world.advance_to(t);
        }
        self.sync_scheduler_stats();
        next
    }

    /// Run until the *brink* of `t`: every event strictly before `t` is
    /// processed, the clock lands exactly on `t`, but no engine has been
    /// polled at `t` yet. A fault injected now is observed by the first
    /// poll at `t` — exactly what a pre-scripted plan entry at `t`
    /// produces, which is what makes driver/script digests byte-equal.
    pub fn run_until_brink(&mut self, t: Nanos) {
        assert!(
            t >= self.world.clock,
            "cannot run to the brink of the past: {t} < {}",
            self.world.clock
        );
        loop {
            self.pool.poll(&mut self.world);
            match self.world.next_time() {
                Some(next) if next < t => self.world.advance_to(next),
                _ => break,
            }
        }
        if self.world.clock < t {
            self.world.advance_to(t);
        }
        self.sync_scheduler_stats();
    }

    /// Inject a fault at the current virtual instant through the plan
    /// machinery (appending to the installed plan, or installing a fresh
    /// one). The fault is applied immediately; engines observe it on the
    /// next poll at this instant.
    pub fn inject_fault(&mut self, ev: FaultEvent) {
        self.world.inject_fault(ev);
    }

    /// Run until nothing can ever happen again (all programs finished or
    /// blocked forever). Returns the final virtual time.
    ///
    /// # Panics
    /// Panics if the system is still active at `deadline` — the universal
    /// hang detector for tests.
    pub fn run_until_quiescent(&mut self, deadline: Nanos) -> Nanos {
        match self.try_run_until_quiescent(deadline) {
            Ok(t) => t,
            Err(hang) => panic!(
                "cluster still active at deadline {deadline}: next event at {}; \
                 live engines: {:?}",
                hang.next_event, hang.live_engines
            ),
        }
    }

    /// [`run_until_quiescent`](Self::run_until_quiescent) that reports a
    /// hang as data instead of panicking — the explorer's hang detector.
    pub fn try_run_until_quiescent(&mut self, deadline: Nanos) -> Result<Nanos, ClusterHang> {
        loop {
            self.pool.poll(&mut self.world);
            match self.world.next_time() {
                Some(next) => {
                    if next > deadline {
                        self.sync_scheduler_stats();
                        return Err(ClusterHang {
                            next_event: next,
                            live_engines: self.live_engine_names(),
                        });
                    }
                    self.world.advance_to(next);
                }
                None => {
                    self.sync_scheduler_stats();
                    return Ok(self.world.clock);
                }
            }
        }
    }

    /// Mirror the pool's efficiency counters into the world-resident
    /// [`SchedulerStats`](crate::health::SchedulerStats) the management
    /// API reads. Called after every run loop.
    fn sync_scheduler_stats(&mut self) {
        let s = &mut self.world.health.scheduler;
        s.polls = self.pool.poll_count();
        s.wasted_polls = self.pool.wasted_poll_count();
        s.wakes = self.pool.wake_count();
        s.waves = self.pool.wave_count();
        s.max_group = self.pool.max_group_size();
        s.planned_polls = self.pool.planned_poll_count();
        s.dropped_plans = self.pool.dropped_plan_count();
    }

    /// Toggle the pool between the wake-driven scheduler and the naive
    /// round-robin oracle (equivalence tests; mirrors
    /// `Network::set_incremental`).
    pub fn set_naive_scheduler(&mut self, naive: bool) {
        self.pool.set_naive(naive);
    }

    /// Whether the pool currently runs the naive round-robin oracle.
    pub fn naive_scheduler(&self) -> bool {
        self.pool.is_naive()
    }

    /// Set the worker count for both parallel simulation paths: the
    /// wave-partitioned engine scheduler and the netsim per-component
    /// solves. Digests are bit-identical at every count (the parallel
    /// executor merges deterministically); only wall-clock and the
    /// `waves`/`max_group` gauges change.
    pub fn set_sim_workers(&mut self, workers: usize) {
        self.pool.set_workers(workers);
        self.world.net.set_workers(workers);
    }

    /// The configured simulation worker count.
    pub fn sim_workers(&self) -> usize {
        self.pool.workers()
    }

    /// Re-shard the event loop: ready set, waiter tables, timer heaps and
    /// the world event queue all split to `shards` (0 = auto, one shard
    /// per rack plus the shared shard 0; 1 = the single-queue oracle).
    /// Engine and resource home-rack attributions are replayed at the new
    /// count. Digest-identical at every count by construction — sharding
    /// only changes step cost, like `set_sim_workers` only changes
    /// wall-clock.
    pub fn set_sim_shards(&mut self, shards: usize) {
        let resolved = if shards == 0 {
            self.world.topo.rack_count() + 1
        } else {
            shards
        };
        self.pool.set_shards(resolved);
        self.world.set_event_shards(resolved);
        self.apply_shard_attribution();
    }

    /// The resolved event-loop shard count.
    pub fn sim_shards(&self) -> usize {
        self.pool.shards()
    }

    /// Per-shard cumulative `(polls, wasted_polls)` tallies — the shards'
    /// contributions whose ascending-shard merge produces the scheduler
    /// totals. Diagnostics only; digest-excluded like every scheduler
    /// counter.
    pub fn per_shard_polls(&self) -> Vec<(u64, u64)> {
        self.pool.per_shard_polls()
    }

    /// Put the network simulator in (or out of) full-oracle mode: map-backed
    /// flow storage, no rack-partitioned solving, from-scratch rate
    /// recomputation. One switch for differential runs — every fast path
    /// the netsim grew (arenas, hierarchical solve, dirty-link
    /// incrementality) is disabled together so a digest mismatch can be
    /// attributed to *some* fast path before bisecting further.
    pub fn set_netsim_oracle(&mut self, oracle: bool) {
        self.world.net.set_map_storage(oracle);
        self.world.net.set_hierarchical(!oracle);
        self.world.net.set_incremental(!oracle);
    }

    /// Scheduler efficiency counters (polls, wasted polls, wakes),
    /// synced from the pool after the last run loop.
    pub fn scheduler_stats(&self) -> crate::health::SchedulerStats {
        self.world.health.scheduler
    }

    /// Live (unfinished) engine count — tenants, frontends, proxies,
    /// transports.
    pub fn live_engines(&self) -> usize {
        self.pool.live()
    }

    /// Names of live engines (deadlock diagnostics).
    pub fn live_engine_names(&self) -> Vec<String> {
        self.pool.live_names().into_iter().map(|(_, n)| n).collect()
    }
}

impl ClusterConfig {
    /// The default seed.
    pub const DEFAULT_SEED: u64 = MCCS_DEFAULT_SEED;

    /// A config with everything default except the seed.
    pub fn with_seed(seed: u64) -> Self {
        ClusterConfig {
            seed,
            ..Default::default()
        }
    }

    /// Library-mode config: no service engines (at-scale studies where
    /// tenants bring their own collective library).
    pub fn library_mode(seed: u64) -> Self {
        ClusterConfig {
            seed,
            service_engines: false,
            ..Default::default()
        }
    }
}
