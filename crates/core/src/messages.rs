//! Engine-to-engine messages.
//!
//! Engines never reference each other directly; everything moves through
//! latency-modeled inboxes in the [`crate::world::World`] — the same
//! discipline the real service's shared-memory engine queues impose.

use crate::config::CollectiveConfig;
use mccs_device::EventId;
use mccs_ipc::{AppId, CollectiveRequest, CommunicatorId};
use mccs_netsim::RouteChoice;
use mccs_sim::Bytes;
use mccs_topology::{GpuId, NicId};
use std::collections::BTreeMap;

/// Messages into a proxy engine's inbox.
#[derive(Clone, Debug)]
pub enum ProxyMsg {
    /// A frontend registered a communicator rank living on this GPU.
    RegisterRank {
        /// Owning application.
        app: AppId,
        /// The rank's shim endpoint (for completions).
        endpoint: usize,
        /// Communicator id.
        comm: CommunicatorId,
        /// Rank -> GPU map, in user rank order.
        world: Vec<GpuId>,
        /// This rank.
        rank: usize,
        /// Event the service records after each collective completion.
        comm_event: EventId,
    },
    /// A frontend forwarded a tenant collective.
    Collective {
        /// The rank's shim endpoint.
        endpoint: usize,
        /// Tenant request id (for the launch ack / errors).
        req: u64,
        /// The invocation.
        coll: CollectiveRequest,
    },
    /// A frontend forwarded a communicator teardown.
    CommDestroy {
        /// The rank's shim endpoint.
        endpoint: usize,
        /// Tenant request id.
        req: u64,
        /// The communicator.
        comm: CommunicatorId,
    },
    /// The provider requests a strategy change (Figure 4 `Req`).
    Reconfigure {
        /// The communicator.
        comm: CommunicatorId,
        /// The controller incarnation that issued this request. Ranks
        /// remember the highest incarnation they have heard from and
        /// fence (drop) requests from older ones — a dead controller's
        /// late-arriving commands must not race its successor's.
        incarnation: u64,
        /// The new configuration (its `epoch` must be current + 1).
        config: CollectiveConfig,
    },
    /// A control-ring barrier contribution travelling rank to rank
    /// (Figure 4 `AG`): the gathered `last launched` sequence numbers.
    BarrierGossip {
        /// The communicator.
        comm: CommunicatorId,
        /// Target epoch of the pending reconfiguration.
        epoch: u64,
        /// The pending configuration itself. Lets a rank whose `Req` was
        /// lost enter the barrier straight from gossip (implicit request)
        /// instead of deadlocking the ring.
        config: CollectiveConfig,
        /// rank -> last launched sequence (`None` = nothing launched).
        entries: BTreeMap<usize, Option<u64>>,
        /// Remaining forward hops around the ring.
        hops_left: usize,
    },
}

/// Messages into a transport engine's inbox.
#[derive(Clone, Debug)]
pub enum TransportMsg {
    /// Launch an inter-host transfer (one edge task of a collective).
    Send {
        /// Owning application (for QoS gating).
        app: AppId,
        /// Communicator (for accounting).
        comm: CommunicatorId,
        /// Collective sequence number.
        seq: u64,
        /// Completion token (fed back into the collective's progress).
        token: u64,
        /// Source NIC (this transport's NIC).
        src_nic: NicId,
        /// Destination NIC.
        dst_nic: NicId,
        /// Payload.
        bytes: Bytes,
        /// Route choice (pinned by FFA/PFA or ECMP).
        route: RouteChoice,
    },
    /// Install (or clear) a traffic-window schedule for an application —
    /// the TS enforcement point.
    SetWindows {
        /// The gated application.
        app: AppId,
        /// The schedule; `None` removes gating.
        windows: Option<crate::qos::TrafficWindows>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_cloneable_and_debuggable() {
        let m = ProxyMsg::BarrierGossip {
            comm: CommunicatorId(1),
            epoch: 2,
            config: CollectiveConfig {
                epoch: 2,
                channel_rings: Vec::new(),
                routes: crate::config::RouteMap::ecmp(),
            },
            entries: BTreeMap::from([(0, Some(5)), (1, None)]),
            hops_left: 3,
        };
        let c = m.clone();
        assert!(format!("{c:?}").contains("BarrierGossip"));

        let t = TransportMsg::SetWindows {
            app: AppId(0),
            windows: None,
        };
        assert!(format!("{:?}", t.clone()).contains("SetWindows"));
    }
}
