//! Provider-side configuration: per-communicator collective strategy and
//! service tuning knobs.

use mccs_collectives::RingOrder;
use mccs_ipc::CommunicatorId;
use mccs_sim::Nanos;
use mccs_topology::{GpuId, NicId, RouteId, Topology};
use std::collections::BTreeMap;

/// Explicit flow-to-route pins: `(channel, src NIC, dst NIC) -> route id`.
/// Pairs without an entry fall back to ECMP with a deterministic
/// connection hash — exactly the paper's split between MCCS (pinned via
/// the UDP-source-port trick) and MCCS(-FA) (plain ECMP).
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct RouteMap {
    map: BTreeMap<(usize, NicId, NicId), RouteId>,
}

impl RouteMap {
    /// Everything-ECMP.
    pub fn ecmp() -> Self {
        Self::default()
    }

    /// Pin one connection.
    pub fn pin(&mut self, channel: usize, src: NicId, dst: NicId, route: RouteId) {
        self.map.insert((channel, src, dst), route);
    }

    /// Look up a pin.
    pub fn get(&self, channel: usize, src: NicId, dst: NicId) -> Option<RouteId> {
        self.map.get(&(channel, src, dst)).copied()
    }

    /// Number of pinned connections.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no connections are pinned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate over all pins.
    pub fn iter(&self) -> impl Iterator<Item = (&(usize, NicId, NicId), &RouteId)> {
        self.map.iter()
    }
}

/// The provider's collective strategy for one communicator: ring order per
/// channel plus flow routes. Every rank derives identical schedules from
/// an identical config — the property the reconfiguration barrier protects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CollectiveConfig {
    /// Configuration epoch; bumped by every reconfiguration.
    pub epoch: u64,
    /// One ring per channel; data is split across channels.
    pub channel_rings: Vec<RingOrder>,
    /// Flow route pins (empty = ECMP everywhere).
    pub routes: RouteMap,
}

impl CollectiveConfig {
    /// The default strategy the service applies with no controller input:
    /// NCCL's own construction (host-grouped, user rank order) with one
    /// channel per communicator GPU on the most-loaded host (engaging every
    /// NIC the tenant was assigned), and ECMP routing.
    pub fn default_for(topo: &Topology, world: &[GpuId]) -> Self {
        let ring = RingOrder::nccl_default(topo, world);
        let channels = max_gpus_per_host(topo, world).max(1);
        CollectiveConfig {
            epoch: 0,
            channel_rings: vec![ring; channels],
            routes: RouteMap::ecmp(),
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channel_rings.len()
    }

    /// The deterministic ECMP hash for an unpinned connection. Stable per
    /// (communicator, epoch, channel, NIC pair) — connections are
    /// established once per configuration, as in NCCL, so every collective
    /// reuses the same path until a reconfiguration re-establishes them.
    pub fn ecmp_hash(&self, comm: CommunicatorId, channel: usize, src: NicId, dst: NicId) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for v in [
            comm.0,
            self.epoch,
            channel as u64,
            u64::from(src.0),
            u64::from(dst.0),
        ] {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

fn max_gpus_per_host(topo: &Topology, world: &[GpuId]) -> usize {
    let mut counts: BTreeMap<_, usize> = BTreeMap::new();
    for &g in world {
        *counts.entry(topo.host_of_gpu(g)).or_default() += 1;
    }
    counts.values().copied().max().unwrap_or(0)
}

/// Service-wide tuning knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// One-way latency of the per-communicator TCP control ring used by
    /// the reconfiguration barrier (per hop).
    pub control_ring_latency: Nanos,
    /// Jitter fraction on control messages (reconfiguration requests reach
    /// different hosts at different times — the Figure 4 hazard).
    pub control_jitter_frac: f64,
    /// Time to tear down and re-establish peer connections when a
    /// reconfiguration is applied.
    pub reconnect_delay: Nanos,
    /// Cache derived collective schedules per `(op, size)` and epoch,
    /// shared across the ranks of a communicator, so steady-state
    /// iterations skip ring/chunk re-derivation. Semantically transparent;
    /// exposed as a switch so tests can compare against the uncached path.
    pub cache_schedules: bool,
    /// How long a transport waits for a flow making no progress before
    /// retrying it on another route. Only checked when a fault plan is
    /// installed — with none, no timers are armed at all.
    pub flow_timeout: Nanos,
    /// Retries per flow (with exponential backoff) before the owning
    /// collective is cleanly failed back to the tenant.
    pub flow_max_retries: u32,
    /// How long a proxy lets a launched collective sit incomplete before
    /// reporting it stalled to the recovery engine. Plan-gated.
    pub liveness_timeout: Nanos,
    /// How long a rank sits in the reconfiguration barrier before
    /// re-sending its gossip (suspected control-message loss). Plan-gated.
    pub gossip_retry: Nanos,
    /// Corrective reconfigurations the recovery engine attempts per
    /// communicator-and-collective before aborting the collective.
    pub recovery_max_attempts: u32,
    /// How transports and the recovery engine treat partially-degraded
    /// routes (brownouts), as opposed to the binary up/down handling.
    pub degradation: DegradationPolicy,
    /// Minimum interval between controller state checkpoints. Checkpoints
    /// are taken opportunistically when the recovery engine runs (its
    /// state only changes when it runs, so nothing is lost by not waking
    /// for them) and only while a fault plan is installed — a plan-free
    /// world does no checkpoint work at all. A smaller interval means a
    /// fresher checkpoint at crash time and less reconciliation on
    /// restart.
    pub controller_checkpoint_interval: Nanos,
    /// Capacity of the bounded health push channel; subscribers that fall
    /// further behind than this resync from a snapshot.
    pub health_channel_capacity: usize,
    /// Worker threads for the parallel simulation paths (wave-partitioned
    /// engine scheduling and per-component max-min solves). `1` is the
    /// fully sequential path; any count produces bit-identical digests —
    /// the pool only changes wall-clock. Defaults to `MCCS_SIM_WORKERS`
    /// (or 1 when unset).
    pub sim_workers: usize,
    /// Event-loop shards for the per-rack scheduler split (ready set,
    /// waiter tables, timer heaps, world event queue). `0` = auto: one
    /// shard per rack plus the shared shard 0. `1` is the single-queue
    /// oracle. Any count is digest-identical by construction — sharding
    /// only changes step cost. Defaults to `MCCS_SIM_SHARDS` /
    /// `MCCS_SIM_SHARDED=0` (auto when unset).
    pub sim_shards: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            control_ring_latency: Nanos::from_micros(30),
            control_jitter_frac: 0.5,
            reconnect_delay: Nanos::from_micros(500),
            cache_schedules: true,
            flow_timeout: Nanos::from_millis(2),
            flow_max_retries: 4,
            liveness_timeout: Nanos::from_millis(20),
            gossip_retry: Nanos::from_micros(300),
            recovery_max_attempts: 3,
            degradation: DegradationPolicy::default(),
            controller_checkpoint_interval: Nanos::from_millis(5),
            health_channel_capacity: crate::health::DEFAULT_HEALTH_CHANNEL_CAPACITY,
            sim_workers: mccs_sim::par::workers_from_env(),
            sim_shards: mccs_sim::par::shards_from_env().unwrap_or(0),
        }
    }
}

/// How routing treats links running below line rate.
///
/// A route's weight is the bottleneck [`link_weight`] along it: 1.0
/// healthy, 0.0 down, the remaining capacity fraction in between. The
/// policy maps that weight to a selection weight: hard-down routes are
/// never selected, routes below `route_around_below` are routed around
/// like down ones (unless nothing better exists), and the rest are
/// chosen with probability proportional to their weight, so a
/// half-capacity link keeps carrying half its healthy share instead of
/// dumping everything onto its siblings. `route_around_below = 1.0`
/// degenerates to today's binary route-around of anything degraded.
///
/// [`link_weight`]: mccs_netsim::Network::link_weight
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegradationPolicy {
    /// Routes whose bottleneck weight falls below this fraction are
    /// treated as unusable and routed around (0.0 = use any link with
    /// capacity left; 1.0 = route around every degraded link).
    pub route_around_below: f64,
    /// An in-flight flow is only rebalanced when some usable route beats
    /// its current route's weight by more than this margin — small
    /// fluctuations don't thrash pinned flows.
    pub rebalance_hysteresis: f64,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        DegradationPolicy {
            route_around_below: 0.25,
            rebalance_hysteresis: 0.1,
        }
    }
}

impl DegradationPolicy {
    /// The binary pre-degradation behavior: route around anything running
    /// below line rate, keep a degraded route only when nothing healthy
    /// is left.
    pub fn route_around() -> Self {
        DegradationPolicy {
            route_around_below: 1.0,
            rebalance_hysteresis: 0.0,
        }
    }

    /// Selection weight of a route with bottleneck weight `w`: zero for
    /// hard-down or below-threshold routes, `w` otherwise.
    pub fn usable_weight(&self, w: f64) -> f64 {
        if w <= 0.0 || w < self.route_around_below {
            0.0
        } else {
            w
        }
    }

    /// Deterministic weighted route selection. `weights` are bottleneck
    /// route weights by [`RouteId`] index; `key` seeds the pick (callers
    /// pass a stable per-flow value so repeated selections agree). Routes
    /// the policy deems unusable are skipped; if no route is usable the
    /// best route with any capacity left is returned (degraded beats
    /// down); `None` only when every route is hard-down.
    pub fn select(&self, weights: &[f64], key: u64) -> Option<usize> {
        let total: f64 = weights.iter().map(|&w| self.usable_weight(w)).sum();
        if total <= 0.0 {
            // Everything is routed around: fall back to the least-bad
            // route that still moves bytes.
            return weights
                .iter()
                .enumerate()
                .filter(|&(_, &w)| w > 0.0)
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("weights are finite"))
                .map(|(i, _)| i);
        }
        // splitmix64 finalizer: a uniform point on the cumulative line.
        let mut h = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        let point = (h >> 11) as f64 / (1u64 << 53) as f64 * total;
        let mut acc = 0.0;
        let mut last = None;
        for (i, &w) in weights.iter().enumerate() {
            let uw = self.usable_weight(w);
            if uw <= 0.0 {
                continue;
            }
            acc += uw;
            last = Some(i);
            if point < acc {
                return Some(i);
            }
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccs_topology::presets;

    #[test]
    fn default_config_engages_all_tenant_nics() {
        let topo = presets::testbed();
        // 8-GPU tenant: 2 GPUs/host -> 2 channels.
        let world: Vec<GpuId> = (0..8).map(GpuId).collect();
        let cfg = CollectiveConfig::default_for(&topo, &world);
        assert_eq!(cfg.channels(), 2);
        // 4-GPU tenant (one per host) -> 1 channel.
        let world4 = vec![GpuId(0), GpuId(2), GpuId(4), GpuId(6)];
        let cfg4 = CollectiveConfig::default_for(&topo, &world4);
        assert_eq!(cfg4.channels(), 1);
    }

    #[test]
    fn ecmp_hash_stable_within_epoch_changes_across() {
        let topo = presets::testbed();
        let world: Vec<GpuId> = (0..4).map(GpuId).collect();
        let mut cfg = CollectiveConfig::default_for(&topo, &world);
        let c = CommunicatorId(3);
        let h1 = cfg.ecmp_hash(c, 0, NicId(0), NicId(4));
        let h2 = cfg.ecmp_hash(c, 0, NicId(0), NicId(4));
        assert_eq!(h1, h2);
        let other_channel = cfg.ecmp_hash(c, 1, NicId(0), NicId(4));
        assert_ne!(h1, other_channel);
        cfg.epoch += 1;
        assert_ne!(h1, cfg.ecmp_hash(c, 0, NicId(0), NicId(4)));
    }

    #[test]
    fn route_map_pins() {
        let mut r = RouteMap::ecmp();
        assert!(r.is_empty());
        r.pin(0, NicId(1), NicId(5), RouteId(1));
        assert_eq!(r.get(0, NicId(1), NicId(5)), Some(RouteId(1)));
        assert_eq!(r.get(1, NicId(1), NicId(5)), None);
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().count(), 1);
    }
}
