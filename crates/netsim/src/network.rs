//! Virtual-time flow lifecycle.
//!
//! [`Network`] owns the active flow set and advances it through virtual
//! time. Rates follow the max-min allocation of [`crate::maxmin`] and are
//! recomputed on every membership change (admission, completion,
//! cancellation, pause/resume, route re-pin) — between changes each flow
//! progresses linearly, so completions can be computed exactly rather than
//! by time-stepping.
//!
//! Recomputation is **incremental**: a membership change re-solves only
//! the flows that share a link — transitively — with the changed flow's
//! links. Connected components of the flow×link graph are independent
//! max-min problems, so disjoint flows keep their rates untouched. The
//! from-scratch path ([`allocate_with_priority`] over every active flow)
//! remains available via [`Network::set_incremental`] as the oracle.
//!
//! Completion times are **indexed**: each rate assignment stores the
//! flow's predicted finish instant and (in incremental mode) pushes it
//! onto a lazily-invalidated min-heap, so
//! [`next_completion_time`](Network::next_completion_time) is O(log F)
//! amortized instead of a scan of every flow, and per-flow byte progress
//! is accrued lazily — only when a flow's own rate changes or it is
//! inspected — so advancing past K completions among F flows costs
//! O((K + changed) · log F) rather than O(K·F). The oracle path scans
//! the same stored predictions linearly, which keeps the two modes
//! byte-identical by construction.

use crate::arena::FlowStore;
use crate::flow::{FlowCompletion, FlowId, FlowSpec, RouteChoice};
use crate::maxmin::{
    allocate_with_priority, allocate_with_priority_into, FlowDemand, SolverScratch,
};
use mccs_sim::{Bandwidth, Bytes, Nanos, Workers};
use mccs_topology::{LinkId, Route, RouteId, Topology};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap, HashSet};
use std::sync::Arc;

#[derive(Clone, Debug)]
struct FlowState {
    spec: FlowSpec,
    route: Route,
    /// Bytes moved as of `accrued_at` (progress between accruals is
    /// linear at `rate`, so it is materialized lazily).
    bytes_done: f64,
    /// Time up to which `bytes_done` is materialized.
    accrued_at: Nanos,
    rate: Bandwidth,
    paused: bool,
    started: Nanos,
    /// Predicted finish instant under the current rate (`None` for
    /// unbounded, paused, or zero-rate flows). Recomputed whenever the
    /// rate is assigned; between assignments progress is linear, so the
    /// prediction stays exact.
    predicted: Option<Nanos>,
    /// Bumped whenever `predicted` changes — completion-heap entries
    /// carry the generation they were pushed with, so stale entries are
    /// recognized and dropped lazily.
    gen: u64,
    /// Structural signature (FNV over route links, tenant, guaranteed)
    /// used as the quick-reject probe of the component remap cache.
    /// Recomputed on re-pin. Signatures only gate the cheap path: a cache
    /// hit is confirmed by exact link-list comparison.
    route_sig: u64,
}

/// Structural signature of one flow for the remap cache: everything the
/// compact remap depends on besides membership order (route links, tenant
/// for the sharing penalty, the guaranteed class).
fn flow_sig(route: &Route, tenant: u32, guaranteed: bool) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0100_0000_01b3);
    };
    for l in route.links.iter() {
        mix(l.index() as u64);
    }
    mix(tenant as u64);
    mix(guaranteed as u64);
    h
}

impl FlowState {
    /// Remaining bytes as of `accrued_at`.
    fn remaining(&self) -> Option<f64> {
        self.spec
            .bytes
            .map(|b| (b.as_f64() - self.bytes_done).max(0.0))
    }

    fn active(&self) -> bool {
        !self.paused
    }

    /// Materialize linear progress up to `to` (paused flows only advance
    /// their anchor).
    fn accrue_to(&mut self, to: Nanos) {
        let dt = to - self.accrued_at;
        if dt > Nanos::ZERO {
            if self.active() {
                self.bytes_done += self.rate.bytes_in(dt);
            }
            self.accrued_at = to;
        }
    }

    /// Bytes moved by time `at` (≥ `accrued_at`), without materializing.
    fn progress_at(&self, at: Nanos) -> f64 {
        if self.active() {
            self.bytes_done + self.rate.bytes_in(at - self.accrued_at)
        } else {
            self.bytes_done
        }
    }

    /// Predicted finish instant, anchored at `accrued_at` (where
    /// `bytes_done` is current). Call only right after `accrue_to`.
    fn predict(&self) -> Option<Nanos> {
        if !self.active() {
            return None;
        }
        let rem = self.remaining()?;
        if rem <= COMPLETION_EPSILON_BYTES {
            return Some(self.accrued_at);
        }
        if self.rate.as_bps() <= 0.0 {
            return None;
        }
        // Round UP to a whole nanosecond (and at least 1 ns): the flow
        // must be *finished* at the returned instant, or the advance loop
        // would spin on a sub-nanosecond residue.
        let ns = (rem / self.rate.as_bytes_per_sec() * 1e9).ceil().max(1.0);
        Some(self.accrued_at + Nanos::from_nanos(ns as u64))
    }
}

/// The flow-level network simulator.
pub struct Network {
    topo: Arc<Topology>,
    /// Arena-indexed flow state (dense slots, generation tags); the
    /// `BTreeMap` oracle representation stays switchable for CI.
    flows: FlowStore<FlowState>,
    next_id: u64,
    /// Time up to which every flow's progress has been accrued.
    clock: Nanos,
    /// Cached per-link capacities (indexed by link id).
    capacities: Vec<Bandwidth>,
    /// Capacity fraction lost on links shared by multiple tenants
    /// (uncoordinated congestion control; 0.0 = ideal fluid sharing).
    cross_tenant_penalty: f64,
    /// Link index -> active (unpaused) flows crossing it, sorted by id.
    /// Dense over link indices; paused flows hold no bandwidth and are
    /// kept out of the index entirely.
    link_flows: Vec<Vec<FlowId>>,
    /// Active (unpaused) flow count — kept in step with `link_flows` so
    /// the solve paths never scan the whole arena just to count.
    active_count: usize,
    /// Links whose flow set (or effective capacity) changed since the last
    /// rate solve. The next solve covers exactly the connected components
    /// these links belong to.
    dirty_links: BTreeSet<usize>,
    /// When false, every solve is from scratch over all active flows (the
    /// oracle path for tests and benchmarks).
    incremental: bool,
    /// Rack-partitioned solve index: per-link rack buckets, per-bucket
    /// active flow lists, and the bucket coupling graph maintained by
    /// multi-rack flows (see [`Self::affected_flows_rack`]).
    racks: RackIndex,
    /// When true (the default), incremental re-solves find their flow set
    /// through the rack-bucket closure instead of the per-link BFS. The
    /// global BFS stays available via [`Self::set_hierarchical`] as the
    /// oracle CI compares against.
    hierarchical: bool,
    /// Min-heap of `(predicted finish, flow, generation)` — the
    /// completion index of the incremental path. Entries are invalidated
    /// lazily: a pushed entry goes stale when its flow leaves or its
    /// prediction is superseded (generation mismatch), and stale heads
    /// are popped on the next peek. A `Mutex` (never contended — the
    /// simulator is single-writer) because
    /// [`next_completion_time`](Network::next_completion_time) is a
    /// `&self` query that must be able to discard stale heads, and the
    /// network must stay `Sync` for the concurrent engine plan phase.
    completions: std::sync::Mutex<BinaryHeap<Reverse<(Nanos, FlowId, u64)>>>,
    /// Per-link fault state. `None` (the default) means the whole fabric
    /// is healthy and no fault bookkeeping runs at all — the zero-overhead
    /// guarantee for fault-free simulations.
    link_faults: Option<LinkFaults>,
    /// Reusable solver buffers + the per-component remap cache for the
    /// incremental path. Taken out of `self` for the duration of a solve.
    solver: NetSolver,
    /// Worker pool for multi-component solves: disjoint components are
    /// independent pure allocation problems, solved concurrently and
    /// merged in component order (bit-identical at any worker count).
    workers: Workers,
}

/// Scratch state for the incremental solve path: the demand/cap/rate
/// buffers and [`SolverScratch`] are reused across solves, and `remap`
/// caches each connected component's compact-link remap so churn that
/// returns a component to a previous membership skips the rebuild.
#[derive(Default)]
struct NetSolver {
    demands: Vec<FlowDemand>,
    caps: Vec<Bandwidth>,
    rates: Vec<Bandwidth>,
    scratch: SolverScratch,
    /// Component key (FNV over per-flow structural signatures) -> entry.
    remap: HashMap<u64, RemapEntry>,
    remap_hits: u64,
    remap_misses: u64,
    /// Hits confirmed by the O(membership) arena-stamp compare alone,
    /// skipping the exact per-link verification. Subset of `remap_hits`.
    remap_fast_hits: u64,
}

/// The rack-partitioned solve index. Built once from the topology; the
/// per-bucket membership mirrors `link_flows` exactly (active flows only).
///
/// Soundness: every link belongs to exactly one bucket and a flow is
/// listed in every bucket its route touches, so two flows sharing a link
/// share a bucket. The transitive closure over `adj` (edges contributed by
/// multi-bucket flows) is therefore closed under the flow-coupling
/// relation — a union of true flow×link connected components, which the
/// water-filling solver treats identically to solving each component
/// alone.
struct RackIndex {
    /// Link index -> bucket (`0` = shared/global, `r + 1` = rack `r`).
    link_bucket: Vec<u32>,
    /// Bucket -> active flows with at least one link in it, sorted by id.
    flows: Vec<Vec<FlowId>>,
    /// Bucket coupling graph: neighbor bucket -> number of flows joining
    /// the pair. Edges disappear when their count drops to zero.
    adj: Vec<BTreeMap<u32, u32>>,
    /// Flows whose routes touch more distinct buckets than the inline
    /// bound tracks (never happens on leaf-spine fabrics). They couple
    /// everything: while any exist, bucket structure is ignored and the
    /// closure is the full active set — conservative, still sound.
    global: Vec<FlowId>,
}

/// Distinct buckets tracked per flow before falling back to the global
/// list. Leaf-spine routes touch at most two racks (plus bucket 0).
const MAX_FLOW_BUCKETS: usize = 8;

impl RackIndex {
    fn new(topo: &Topology) -> Self {
        let link_bucket = topo.link_rack_buckets();
        let buckets = link_bucket.iter().copied().max().unwrap_or(0) as usize + 1;
        RackIndex {
            link_bucket,
            flows: vec![Vec::new(); buckets],
            adj: vec![BTreeMap::new(); buckets],
            global: Vec::new(),
        }
    }

    /// The distinct buckets a route touches, in first-touch order.
    /// `None` signals inline-bound overflow (handled via `global`).
    fn route_buckets(&self, links: &[LinkId]) -> Option<([u32; MAX_FLOW_BUCKETS], usize)> {
        let mut set = [0u32; MAX_FLOW_BUCKETS];
        let mut n = 0usize;
        for l in links {
            let b = self.link_bucket[l.index()];
            if !set[..n].contains(&b) {
                if n == MAX_FLOW_BUCKETS {
                    return None;
                }
                set[n] = b;
                n += 1;
            }
        }
        Some((set, n))
    }

    /// Register an active flow's coupling (mirror of `index_insert`).
    fn couple(&mut self, id: FlowId, links: &[LinkId]) {
        let Some((set, n)) = self.route_buckets(links) else {
            let pos = self.global.binary_search(&id).unwrap_err();
            self.global.insert(pos, id);
            return;
        };
        for &b in &set[..n] {
            let list = &mut self.flows[b as usize];
            if let Err(pos) = list.binary_search(&id) {
                list.insert(pos, id);
            }
        }
        for i in 0..n {
            for j in (i + 1)..n {
                let (a, b) = (set[i], set[j]);
                *self.adj[a as usize].entry(b).or_insert(0) += 1;
                *self.adj[b as usize].entry(a).or_insert(0) += 1;
            }
        }
    }

    /// Unregister an active flow's coupling (mirror of `index_remove`).
    fn decouple(&mut self, id: FlowId, links: &[LinkId]) {
        let Some((set, n)) = self.route_buckets(links) else {
            if let Ok(pos) = self.global.binary_search(&id) {
                self.global.remove(pos);
            }
            return;
        };
        for &b in &set[..n] {
            let list = &mut self.flows[b as usize];
            if let Ok(pos) = list.binary_search(&id) {
                list.remove(pos);
            }
        }
        for i in 0..n {
            for j in (i + 1)..n {
                let (a, b) = (set[i], set[j]);
                for (x, y) in [(a, b), (b, a)] {
                    let m = &mut self.adj[x as usize];
                    if let Some(c) = m.get_mut(&y) {
                        *c -= 1;
                        if *c == 0 {
                            m.remove(&y);
                        }
                    }
                }
            }
        }
    }
}

/// One component's cached compact-link remap, keyed **structurally** (by
/// route/tenant/class shape, not flow ids) so recurring traffic patterns
/// — the next iteration of the same collective, a flow resuming after a
/// TS window — hit even though their flow ids are fresh. Hits are
/// confirmed by exact per-slot comparison of real link lists (signature
/// collisions fall back to a rebuild), and per-link capacities are always
/// re-read from the current fault state, so an entry can serve
/// indefinitely while an identically-shaped component recurs.
struct RemapEntry {
    /// Per-flow arena stamps (`generation << 32 | slot`) captured when the
    /// entry was last verified. A slot's generation bumps whenever it is
    /// freed or its flow is re-pinned, so stamp equality over the whole
    /// membership proves the component is literally the same flows with
    /// unchanged routes — the exact link verification below can be
    /// skipped. Empty under the map-backed oracle storage (no slots),
    /// which always takes the slow verification path.
    stamps: Vec<u64>,
    /// Per-flow structural signatures, in membership order (quick reject).
    sigs: Vec<u64>,
    /// `links[offsets[i]..offsets[i+1]]` are flow i's compact link
    /// indices; the same range of `real_links_flat` holds the real
    /// (topology) link indices used to verify a hit exactly.
    offsets: Vec<u32>,
    links: Vec<u32>,
    real_links_flat: Vec<u32>,
    /// Per-flow (tenant, guaranteed) the sharing flags were derived from.
    tenants: Vec<u32>,
    guaranteed: Vec<bool>,
    /// Per compact link: the real (topology) link index.
    real_link: Vec<u32>,
    /// Per compact link: shared across tenants (penalty applies).
    shared: Vec<bool>,
}

/// Remap-cache entries beyond this are assumed to be stale garbage from
/// membership churn; the cache is dropped wholesale and rebuilt on demand.
const REMAP_CACHE_LIMIT: usize = 512;

/// Lazily-allocated per-link fault state (only once a fault is injected).
#[derive(Clone, Debug)]
struct LinkFaults {
    /// Whether each link (by index) is up.
    up: Vec<bool>,
    /// Remaining capacity fraction of each link (1.0 = healthy).
    degrade: Vec<f64>,
}

impl Network {
    /// A quiet network over `topo` at time zero.
    ///
    /// Incremental rate recomputation is on by default; setting the
    /// `MCCS_NETSIM_ORACLE` environment variable flips the default to the
    /// from-scratch oracle solver (CI's oracle-equivalence job runs whole
    /// test suites that way without touching call sites). Explicit
    /// [`set_incremental`](Network::set_incremental) calls still win.
    /// Further oracle toggles: `MCCS_NETSIM_MAP_STORE` defaults flow
    /// storage to the map-backed representation, `MCCS_NETSIM_GLOBAL_SOLVE`
    /// defaults the incremental path to the global per-link BFS instead of
    /// the rack-bucket closure.
    pub fn new(topo: Arc<Topology>) -> Self {
        let capacities = topo.links().iter().map(|l| l.bandwidth).collect();
        let racks = RackIndex::new(&topo);
        let link_count = topo.links().len();
        let flows = if std::env::var_os("MCCS_NETSIM_MAP_STORE").is_some() {
            FlowStore::map_backed()
        } else {
            FlowStore::default()
        };
        Network {
            topo,
            flows,
            next_id: 0,
            clock: Nanos::ZERO,
            capacities,
            cross_tenant_penalty: DEFAULT_CROSS_TENANT_PENALTY,
            link_flows: vec![Vec::new(); link_count],
            active_count: 0,
            dirty_links: BTreeSet::new(),
            incremental: std::env::var_os("MCCS_NETSIM_ORACLE").is_none(),
            racks,
            hierarchical: std::env::var_os("MCCS_NETSIM_GLOBAL_SOLVE").is_none(),
            completions: std::sync::Mutex::new(BinaryHeap::new()),
            link_faults: None,
            solver: NetSolver::default(),
            workers: Workers::new(mccs_sim::par::workers_from_env()),
        }
    }

    /// Set the worker count for multi-component rate solves. Disjoint
    /// connected components are independent pure allocation problems, so
    /// solving them on a pool is bit-identical to solving them in order —
    /// `1` (the default) keeps everything on the calling thread.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = Workers::new(workers);
    }

    /// The configured solve worker count.
    pub fn workers(&self) -> usize {
        self.workers.count()
    }

    /// Override the cross-tenant sharing penalty (0.0 = fluid).
    pub fn set_cross_tenant_penalty(&mut self, penalty: f64) {
        assert!((0.0..1.0).contains(&penalty), "penalty must be in [0,1)");
        self.cross_tenant_penalty = penalty;
        // The effective capacity of every busy link may have changed.
        for (idx, flows) in self.link_flows.iter().enumerate() {
            if !flows.is_empty() {
                self.dirty_links.insert(idx);
            }
        }
        self.recompute_rates();
    }

    /// Toggle incremental rate recomputation (on by default). With it off
    /// every membership change re-solves the full active flow set and
    /// completions come from a linear scan of the stored predictions —
    /// the oracle the incremental path (and its completion heap) is
    /// tested against.
    pub fn set_incremental(&mut self, enabled: bool) {
        if enabled && !self.incremental {
            // Rebuild the completion index from the current predictions
            // (no entries were pushed while the oracle path ran).
            let heap = self.completions.get_mut().expect("completion heap lock");
            heap.clear();
            self.flows.for_each_ordered(|id, f| {
                if let (true, Some(t)) = (f.active(), f.predicted) {
                    heap.push(Reverse((t, id, f.gen)));
                }
            });
        }
        self.incremental = enabled;
    }

    /// Toggle the rack-partitioned incremental solve (on by default).
    /// With it off, incremental re-solves fall back to the global
    /// per-link BFS — the oracle the bucket closure is compared against.
    /// The rack index is maintained either way, so this is free to flip
    /// mid-run.
    pub fn set_hierarchical(&mut self, enabled: bool) {
        self.hierarchical = enabled;
    }

    /// Whether the rack-partitioned incremental solve is in use.
    pub fn hierarchical(&self) -> bool {
        self.hierarchical
    }

    /// Switch flow storage between the dense arena (default, `false`) and
    /// the map-backed oracle representation (`true`). Every observable is
    /// byte-identical between the two; CI flips this and checks digests.
    pub fn set_map_storage(&mut self, map: bool) {
        self.flows.set_map_backed(map);
    }

    /// Whether the map-backed oracle storage is in use.
    pub fn map_storage(&self) -> bool {
        self.flows.is_map_backed()
    }

    /// The topology this network runs on.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// Time up to which progress has been accrued.
    pub fn now(&self) -> Nanos {
        self.clock
    }

    /// Number of flows currently in the system (including paused).
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    // ---- lifecycle --------------------------------------------------------

    /// Admit a flow at time `now`. Resolves the route (ECMP hash or pinned
    /// id) immediately; rates are recomputed.
    ///
    /// # Panics
    /// Panics if `now` precedes already-accrued time, if src == dst, or if
    /// a pinned route id is out of range.
    pub fn start_flow(&mut self, now: Nanos, spec: FlowSpec) -> FlowId {
        assert_ne!(spec.src, spec.dst, "flow to self never reaches the fabric");
        self.catch_up(now);
        let route = match spec.routing {
            RouteChoice::Ecmp { hash } => self.topo.ecmp_route(spec.src, spec.dst, hash),
            RouteChoice::Pinned(id) => self.topo.pinned_route(spec.src, spec.dst, id),
        };
        let id = FlowId(self.next_id);
        self.next_id += 1;
        let route_sig = flow_sig(&route, spec.tenant, spec.guaranteed);
        self.flows.insert(
            id,
            FlowState {
                spec,
                route,
                bytes_done: 0.0,
                accrued_at: now,
                rate: Bandwidth::ZERO,
                paused: false,
                started: now,
                predicted: None,
                gen: 0,
                route_sig,
            },
        );
        self.index_insert(id);
        self.recompute_rates();
        id
    }

    /// Remove a flow regardless of progress (used for background flows and
    /// reconfiguration teardown). No completion record is produced.
    pub fn cancel_flow(&mut self, now: Nanos, id: FlowId) {
        self.catch_up(now);
        assert!(self.flows.contains(id), "cancel of unknown {id:?}");
        self.index_remove(id);
        self.flows.remove(id);
        self.recompute_rates();
    }

    /// Gate a flow (paused flows hold no bandwidth) — the mechanism behind
    /// time-window traffic scheduling.
    pub fn set_paused(&mut self, now: Nanos, id: FlowId, paused: bool) {
        self.catch_up(now);
        let was = self
            .flows
            .get(id)
            .unwrap_or_else(|| panic!("pause of unknown {id:?}"))
            .paused;
        if was != paused {
            if paused {
                self.index_remove(id);
                let clock = self.clock;
                let f = self.flows.get_mut(id).expect("checked above");
                // Freeze progress at the pause instant; the prediction is
                // void until resume re-solves a rate.
                f.accrue_to(clock);
                f.paused = true;
                f.rate = Bandwidth::ZERO;
                if f.predicted.is_some() {
                    f.predicted = None;
                    f.gen += 1;
                }
            } else {
                let clock = self.clock;
                let f = self.flows.get_mut(id).expect("checked above");
                // No progress while paused: restart the anchor here.
                f.accrued_at = clock;
                f.paused = false;
                self.index_insert(id);
            }
            self.recompute_rates();
        }
    }

    /// Move a flow onto a different equal-cost route at runtime.
    pub fn repin_flow(&mut self, now: Nanos, id: FlowId, route: RouteId) {
        self.catch_up(now);
        let (src, dst) = {
            let f = self
                .flows
                .get(id)
                .unwrap_or_else(|| panic!("repin of unknown {id:?}"));
            (f.spec.src, f.spec.dst)
        };
        let new_route = self.topo.pinned_route(src, dst, route);
        self.index_remove(id);
        let f = self.flows.get_mut(id).expect("checked above");
        f.route_sig = flow_sig(&new_route, f.spec.tenant, f.spec.guaranteed);
        f.route = new_route;
        f.spec.routing = RouteChoice::Pinned(route);
        // Structural edit: stamp-keyed caches must stop trusting this slot.
        self.flows.bump_generation(id);
        self.index_insert(id);
        self.recompute_rates();
    }

    // ---- faults -----------------------------------------------------------

    /// Take a link down (`up = false`) or bring it back up. Down links have
    /// zero capacity: flows crossing them freeze at rate 0 but stay in the
    /// system (stalled, recoverable by re-pinning or repair).
    pub fn set_link_up(&mut self, now: Nanos, link: LinkId, up: bool) {
        self.catch_up(now);
        let idx = link.index();
        let faults = self.faults_mut();
        if faults.up[idx] != up {
            faults.up[idx] = up;
            self.dirty_links.insert(idx);
            self.recompute_rates();
        }
    }

    /// Degrade a link to `fraction` of its capacity (1.0 restores it).
    pub fn set_link_degrade(&mut self, now: Nanos, link: LinkId, fraction: f64) {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "degrade fraction must be in [0,1]"
        );
        self.catch_up(now);
        let idx = link.index();
        let faults = self.faults_mut();
        if faults.degrade[idx] != fraction {
            faults.degrade[idx] = fraction;
            self.dirty_links.insert(idx);
            self.recompute_rates();
        }
    }

    /// Whether a link is currently up (always true without faults).
    pub fn link_up(&self, link: LinkId) -> bool {
        self.link_faults.as_ref().is_none_or(|f| f.up[link.index()])
    }

    /// Whether every link of the identified pinned route is up.
    pub fn route_healthy(
        &self,
        src: mccs_topology::NicId,
        dst: mccs_topology::NicId,
        id: RouteId,
    ) -> bool {
        let route = self.topo.pinned_route(src, dst, id);
        route.links.iter().all(|&l| self.link_up(l))
    }

    /// Remaining capacity fraction of a link: 1.0 healthy, 0.0 down, the
    /// degrade fraction in between. This is the routing weight a
    /// degradation-aware policy feeds on.
    pub fn link_weight(&self, link: LinkId) -> f64 {
        match &self.link_faults {
            None => 1.0,
            Some(f) if !f.up[link.index()] => 0.0,
            Some(f) => f.degrade[link.index()],
        }
    }

    /// Effective capacity of a link: base bandwidth × degrade fraction,
    /// zero while the link is down.
    pub fn link_effective_capacity(&self, link: LinkId) -> Bandwidth {
        self.effective_capacity(link.index())
    }

    /// Bottleneck weight of the identified pinned route: the minimum
    /// [`link_weight`](Network::link_weight) along it (1.0 for a fully
    /// healthy path, 0.0 if any link is down).
    pub fn route_weight(
        &self,
        src: mccs_topology::NicId,
        dst: mccs_topology::NicId,
        id: RouteId,
    ) -> f64 {
        if self.link_faults.is_none() {
            return 1.0;
        }
        let route = self.topo.pinned_route(src, dst, id);
        route
            .links
            .iter()
            .map(|&l| self.link_weight(l))
            .fold(1.0, f64::min)
    }

    /// Estimated max-min share a (new or moved) flow of `tenant` would
    /// get over the pinned route `id`, assuming every other flow stays
    /// put: per link, the effective capacity — cross-tenant-penalized if
    /// tenants would mix on it — split evenly over the flows the link
    /// would then carry; the route estimate is the bottleneck minimum.
    /// `exclude` discounts the querying flow itself wherever it currently
    /// runs. A cheap planning signal for degradation-aware rebalancing;
    /// authoritative rates still come from the max-min solve.
    pub fn estimate_route_share(
        &self,
        src: mccs_topology::NicId,
        dst: mccs_topology::NicId,
        id: RouteId,
        tenant: u32,
        exclude: Option<FlowId>,
    ) -> Bandwidth {
        let route = self.topo.pinned_route(src, dst, id);
        let mut share = f64::INFINITY;
        for &l in route.links.iter() {
            let idx = l.index();
            let mut others = 0usize;
            let mut mixed = false;
            for &f in &self.link_flows[idx] {
                if Some(f) == exclude {
                    continue;
                }
                others += 1;
                mixed |= self.flow(f).spec.tenant != tenant;
            }
            let mut cap = self.effective_capacity(idx).as_bps();
            if mixed {
                cap *= 1.0 - self.cross_tenant_penalty;
            }
            share = share.min(cap / (others + 1) as f64);
        }
        Bandwidth::bps(share)
    }

    /// Abort every in-flight flow crossing `link`, returning the victims'
    /// ids and tags. No completion records are produced — the flows simply
    /// vanish, as after a switch reset.
    pub fn kill_flows_on_link(&mut self, now: Nanos, link: LinkId) -> Vec<(FlowId, u64)> {
        self.kill_matching(now, |f| f.route.links.contains(&link))
    }

    /// Abort every in-flight flow that starts or ends at `nic` (host crash:
    /// both directions die with the host). Returns the victims' ids/tags.
    pub fn kill_flows_touching_nic(
        &mut self,
        now: Nanos,
        nic: mccs_topology::NicId,
    ) -> Vec<(FlowId, u64)> {
        self.kill_matching(now, |f| f.spec.src == nic || f.spec.dst == nic)
    }

    fn kill_matching(
        &mut self,
        now: Nanos,
        pred: impl Fn(&FlowState) -> bool,
    ) -> Vec<(FlowId, u64)> {
        self.catch_up(now);
        let mut victims: Vec<(FlowId, u64)> = Vec::new();
        self.flows.for_each_ordered(|id, f| {
            if pred(f) {
                victims.push((id, f.spec.tag));
            }
        });
        for &(id, _) in &victims {
            self.index_remove(id);
            self.flows.remove(id);
        }
        if !victims.is_empty() {
            self.recompute_rates();
        }
        victims
    }

    fn faults_mut(&mut self) -> &mut LinkFaults {
        self.link_faults.get_or_insert_with(|| LinkFaults {
            up: vec![true; self.topo.links().len()],
            degrade: vec![1.0; self.topo.links().len()],
        })
    }

    fn effective_capacity(&self, idx: usize) -> Bandwidth {
        match &self.link_faults {
            None => self.capacities[idx],
            Some(f) if !f.up[idx] => Bandwidth::ZERO,
            Some(f) => self.capacities[idx] * f.degrade[idx],
        }
    }

    /// Advance to `target`, processing every intermediate completion at its
    /// exact time (each completion frees capacity and re-accelerates the
    /// survivors). Returns completions in time order.
    pub fn advance_to(&mut self, target: Nanos) -> Vec<FlowCompletion> {
        assert!(target >= self.clock, "time went backwards");
        let mut out = Vec::new();
        loop {
            match self.next_completion_time() {
                Some(t) if t <= target => {
                    self.catch_up(t);
                    self.reap(&mut out);
                    self.recompute_rates();
                }
                _ => {
                    self.catch_up(target);
                    // Flows can also land exactly on `target`.
                    let before = out.len();
                    self.reap(&mut out);
                    if out.len() != before {
                        self.recompute_rates();
                    }
                    return out;
                }
            }
        }
    }

    /// When the earliest bounded flow will finish at current rates.
    ///
    /// Incremental mode peeks the completion heap, discarding stale heads
    /// (O(log F) amortized — each pushed entry is popped at most once).
    /// Oracle mode scans the same stored predictions linearly, so the two
    /// modes agree byte-for-byte.
    pub fn next_completion_time(&self) -> Option<Nanos> {
        if !self.incremental {
            let mut min: Option<Nanos> = None;
            self.flows.for_each_ordered(|_, f| {
                if let (true, Some(t)) = (f.active(), f.predicted) {
                    min = Some(min.map_or(t, |m| m.min(t)));
                }
            });
            return min;
        }
        let mut heap = self.completions.lock().expect("completion heap lock");
        while let Some(&Reverse((t, id, gen))) = heap.peek() {
            if self
                .flows
                .get(id)
                .is_some_and(|f| f.active() && f.gen == gen)
            {
                debug_assert_eq!(
                    self.flow(id).predicted,
                    Some(t),
                    "generation-current heap entry disagrees with its flow"
                );
                return Some(t);
            }
            heap.pop();
        }
        None
    }

    // ---- inspection --------------------------------------------------------

    /// Current allocated rate of a flow.
    pub fn flow_rate(&self, id: FlowId) -> Bandwidth {
        self.flows
            .get(id)
            .map(|f| f.rate)
            .unwrap_or(Bandwidth::ZERO)
    }

    /// Bytes a flow has moved so far.
    pub fn flow_progress(&self, id: FlowId) -> Bytes {
        self.flows
            .get(id)
            .map(|f| Bytes::new(f.progress_at(self.clock) as u64))
            .unwrap_or(Bytes::ZERO)
    }

    /// The route a flow currently uses.
    pub fn flow_route(&self, id: FlowId) -> Option<&Route> {
        self.flows.get(id).map(|f| &f.route)
    }

    /// Whether a flow is still present.
    pub fn contains(&self, id: FlowId) -> bool {
        self.flows.contains(id)
    }

    /// Aggregate allocated rate over a link right now. Summation order is
    /// the canonical id order (identical across storage representations).
    pub fn link_load(&self, link: LinkId) -> Bandwidth {
        let mut total = 0.0f64;
        for &id in &self.link_flows[link.index()] {
            total += self.flow(id).rate.as_bps();
        }
        Bandwidth::bps(total)
    }

    /// Link load as a fraction of capacity.
    pub fn link_utilization(&self, link: LinkId) -> f64 {
        self.link_load(link).as_bps() / self.topo.link(link).bandwidth.as_bps()
    }

    // ---- internals --------------------------------------------------------

    /// A known-live flow (panics on dangling ids — internal indices only
    /// ever hold live ones).
    fn flow(&self, id: FlowId) -> &FlowState {
        self.flows.get(id).expect("indexed flow is live")
    }

    /// Move the clock forward. Per-flow byte counters accrue lazily from
    /// each flow's own `accrued_at` anchor, so advancing time is O(1) —
    /// nothing per-flow happens here.
    fn catch_up(&mut self, now: Nanos) {
        assert!(
            now >= self.clock,
            "mutation in the past: {now} < {}",
            self.clock
        );
        self.clock = now;
    }

    fn reap(&mut self, out: &mut Vec<FlowCompletion>) {
        let clock = self.clock;
        let mut done: Vec<FlowId> = if self.incremental {
            // Pop every heap entry due by now; generation-stale entries
            // are discarded for free on the way. Cost is O(due · log F),
            // not O(F).
            let flows = &self.flows;
            let heap = self.completions.get_mut().expect("completion heap lock");
            let mut due = Vec::new();
            while let Some(&Reverse((t, id, gen))) = heap.peek() {
                if t > clock {
                    break;
                }
                heap.pop();
                if flows.get(id).is_some_and(|f| f.active() && f.gen == gen) {
                    due.push(id);
                }
            }
            due
        } else {
            let mut due = Vec::new();
            self.flows.for_each_ordered(|id, f| {
                if f.active() && f.predicted.is_some_and(|t| t <= clock) {
                    due.push(id);
                }
            });
            due
        };
        // Heap order is (time, id); the oracle scans in id order. Completions
        // in one reap batch share `finished_at`, so id order is canonical.
        done.sort_unstable();
        for id in done {
            self.index_remove(id);
            let f = self.flows.remove(id).expect("listed above");
            out.push(FlowCompletion {
                id,
                tag: f.spec.tag,
                started_at: f.started,
                finished_at: self.clock,
                bytes: f.spec.bytes.expect("bounded"),
            });
        }
    }

    /// Add an active flow's links to the link index, marking them dirty.
    /// No-op for paused flows: they hold no bandwidth, so their links (and
    /// sharers) are unaffected until they resume.
    fn index_insert(&mut self, id: FlowId) {
        let f = self.flow(id);
        if !f.active() {
            return;
        }
        let links = Arc::clone(&f.route.links);
        for l in links.iter() {
            let idx = l.index();
            let list = &mut self.link_flows[idx];
            if let Err(pos) = list.binary_search(&id) {
                list.insert(pos, id);
            }
            self.dirty_links.insert(idx);
        }
        self.active_count += 1;
        self.racks.couple(id, &links);
    }

    /// Remove a flow from the link index, marking its links dirty.
    /// No-op for paused flows, which were never indexed.
    fn index_remove(&mut self, id: FlowId) {
        let f = self.flow(id);
        if !f.active() {
            return;
        }
        let links = Arc::clone(&f.route.links);
        for l in links.iter() {
            let idx = l.index();
            let list = &mut self.link_flows[idx];
            if let Ok(pos) = list.binary_search(&id) {
                list.remove(pos);
            }
            self.dirty_links.insert(idx);
        }
        self.active_count -= 1;
        self.racks.decouple(id, &links);
    }

    /// The flows sharing a link — transitively — with any dirty link,
    /// grouped by connected component of the flow×link graph. Each group
    /// is a closed component (flows outside keep valid rates) and the
    /// groups are disjoint, so they are independent max-min problems —
    /// solvable in any order or concurrently. Consumes the dirty set.
    fn affected_components(&mut self) -> Vec<Vec<FlowId>> {
        let active_total = self.active_count;
        let dirty: Vec<usize> = std::mem::take(&mut self.dirty_links).into_iter().collect();
        let mut seen_links: HashSet<usize> = HashSet::new();
        let mut seen_total = 0usize;
        let mut comps: Vec<Vec<FlowId>> = Vec::new();
        'seeds: for seed in dirty {
            if !seen_links.insert(seed) {
                continue;
            }
            let mut frontier: Vec<usize> = vec![seed];
            let mut comp: BTreeSet<FlowId> = BTreeSet::new();
            while let Some(link) = frontier.pop() {
                for i in 0..self.link_flows[link].len() {
                    let id = self.link_flows[link][i];
                    if comp.insert(id) {
                        seen_total += 1;
                        // Every active flow is already in some component:
                        // no link left to expand can reveal a new one, and
                        // later seeds would only re-walk (partial pieces
                        // of) this component, so stop entirely. The
                        // components found so far stay closed — only
                        // flow-adding expansion is skipped.
                        if seen_total == active_total {
                            comps.push(comp.into_iter().collect());
                            break 'seeds;
                        }
                        for l in self.flow(id).route.links.iter() {
                            let idx = l.index();
                            if seen_links.insert(idx) {
                                frontier.push(idx);
                            }
                        }
                    }
                }
            }
            if !comp.is_empty() {
                comps.push(comp.into_iter().collect());
            }
        }
        comps
    }

    /// Hierarchical variant of [`Self::affected_components`]: dirty links
    /// map to rack buckets, and each unseen dirty bucket seeds a
    /// fixed-point closure over the bucket coupling graph (edges =
    /// cross-rack flows stitching racks at their spine hops); each closed
    /// bucket set contributes one group — the union of its buckets' flow
    /// lists. A rack-local churn event thus re-solves its rack component
    /// plus whatever spine coupling exists — not a per-link BFS over the
    /// whole touched traffic. Each closure is a coarsening of the true
    /// flow×link components (see [`RackIndex`]), and distinct closures
    /// share no flow (a flow spanning two closures would couple them), so
    /// every group is a union of components and rates match the global
    /// path.
    fn affected_components_rack(&mut self) -> Vec<Vec<FlowId>> {
        let dirty = std::mem::take(&mut self.dirty_links);
        if dirty.is_empty() {
            return Vec::new();
        }
        if !self.racks.global.is_empty() {
            // A bucket-overflow flow couples every bucket it touches and
            // we stopped tracking which: collapse to the full active set.
            let mut all = Vec::with_capacity(self.active_count);
            self.flows.for_each_ordered(|id, f| {
                if f.active() {
                    all.push(id);
                }
            });
            return vec![all];
        }
        let mut seen = vec![false; self.racks.flows.len()];
        let mut seen_total = 0usize;
        let mut comps: Vec<Vec<FlowId>> = Vec::new();
        'seeds: for idx in dirty {
            let b = self.racks.link_bucket[idx];
            if seen[b as usize] {
                continue;
            }
            seen[b as usize] = true;
            let mut frontier: Vec<u32> = vec![b];
            let mut closure: Vec<u32> = Vec::new();
            while let Some(b) = frontier.pop() {
                closure.push(b);
                for &n in self.racks.adj[b as usize].keys() {
                    if !seen[n as usize] {
                        seen[n as usize] = true;
                        frontier.push(n);
                    }
                }
            }
            let mut comp: BTreeSet<FlowId> = BTreeSet::new();
            for b in closure {
                for &id in self.racks.flows[b as usize].iter() {
                    if comp.insert(id) {
                        seen_total += 1;
                    }
                }
                // Every active flow is in some group already: remaining
                // buckets (of this closure or later seeds) hold only flows
                // this group has, by closure disjointness.
                if seen_total == self.active_count {
                    comps.push(comp.into_iter().collect());
                    break 'seeds;
                }
            }
            if !comp.is_empty() {
                comps.push(comp.into_iter().collect());
            }
        }
        comps
    }

    fn recompute_rates(&mut self) {
        if self.incremental {
            let comps = if self.hierarchical {
                self.affected_components_rack()
            } else {
                self.affected_components()
            };
            if !comps.is_empty() {
                self.solve_components(&comps);
            }
        } else {
            self.dirty_links.clear();
            let mut all = Vec::with_capacity(self.active_count);
            self.flows.for_each_ordered(|id, f| {
                if f.active() {
                    all.push(id);
                }
            });
            self.solve_for(&all);
        }
    }

    /// Solve each affected group as its own max-min problem. With one
    /// group or one worker, groups go through the cached sequential path
    /// one by one. Otherwise the per-group problems are *filled*
    /// sequentially in group order (the remap cache is consulted and
    /// updated exactly as a sequential run would), solved concurrently on
    /// the worker pool — [`allocate_with_priority_into`] is a pure
    /// function of the demands and caps; scratch-independence is pinned
    /// by the `scratch_reuse_matches_oracle` proptest — and the rates
    /// applied in group order. Decomposition, fill order and apply order
    /// are identical at every worker count, so rates (and therefore
    /// digests) are bit-identical by construction; the pool only changes
    /// wall-clock.
    fn solve_components(&mut self, comps: &[Vec<FlowId>]) {
        if comps.len() <= 1 || self.workers.count() == 1 || !self.incremental {
            for ids in comps {
                self.solve_for(ids);
            }
            return;
        }
        let mut s = std::mem::take(&mut self.solver);
        let mut problems: Vec<(Vec<FlowDemand>, Vec<Bandwidth>)> = Vec::with_capacity(comps.len());
        for ids in comps {
            self.fill_problem_cached(ids, &mut s);
            problems.push((s.demands.clone(), s.caps.clone()));
        }
        let solved: Vec<Vec<Bandwidth>> = self.workers.run(problems.len(), |i| {
            let (demands, caps) = &problems[i];
            let mut scratch = SolverScratch::default();
            let mut rates = Vec::with_capacity(demands.len());
            allocate_with_priority_into(demands, caps, &mut scratch, &mut rates);
            rates
        });
        // Groups are disjoint and closed, so applying rates after all
        // fills is indistinguishable from the interleaved sequential
        // fill/solve/apply: a fill never reads another group's flows.
        for (ids, rates) in comps.iter().zip(&solved) {
            for (&id, &rate) in ids.iter().zip(rates.iter()) {
                self.set_rate_and_predict(id, rate);
            }
        }
        self.solver = s;
    }

    /// Max-min solve restricted to `ids` (which must be a union of
    /// connected components — or the full active set).
    ///
    /// The incremental path reuses the [`NetSolver`] scratch (demand /
    /// capacity / rate buffers, [`SolverScratch`], remap cache) so a
    /// steady-state solve allocates nothing. The from-scratch oracle path
    /// (`set_incremental(false)`) keeps the original allocating pipeline
    /// so equivalence tests compare genuinely independent code.
    fn solve_for(&mut self, ids: &[FlowId]) {
        if !self.incremental {
            let (demands, compact_caps) = self.build_problem(ids);
            let rates = allocate_with_priority(&demands, &compact_caps);
            for (&id, rate) in ids.iter().zip(rates) {
                self.set_rate_and_predict(id, rate);
            }
            return;
        }
        let mut s = std::mem::take(&mut self.solver);
        self.fill_problem_cached(ids, &mut s);
        allocate_with_priority_into(&s.demands, &s.caps, &mut s.scratch, &mut s.rates);
        for (&id, &rate) in ids.iter().zip(&s.rates) {
            self.set_rate_and_predict(id, rate);
        }
        self.solver = s;
    }

    /// Assign a freshly solved rate to a flow: materialize its progress up
    /// to now (the old rate applied until this instant), store the rate,
    /// and refresh the completion prediction. If the prediction changed,
    /// the flow's generation is bumped — lazily invalidating any heap
    /// entry carrying the old one — and the new instant is pushed.
    fn set_rate_and_predict(&mut self, id: FlowId, rate: Bandwidth) {
        let clock = self.clock;
        let indexed = self.incremental;
        let f = self.flows.get_mut(id).expect("listed above");
        f.accrue_to(clock);
        f.rate = rate;
        let p = f.predict();
        if p == f.predicted {
            return; // any existing heap entry is still exact
        }
        f.predicted = p;
        f.gen += 1;
        let gen = f.gen;
        if indexed {
            if let Some(t) = p {
                self.completions
                    .get_mut()
                    .expect("completion heap lock")
                    .push(Reverse((t, id, gen)));
            }
        }
    }

    /// FNV-1a over the component's per-flow structural signatures — the
    /// remap-cache key. Membership order matters (compact indices are
    /// assigned in traversal order) and is part of the key implicitly via
    /// the signature sequence.
    fn component_key(&self, ids: &[FlowId]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &id in ids {
            h ^= self.flow(id).route_sig;
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        h
    }

    /// Fill `s.demands` / `s.caps` for `ids`, consulting the component
    /// remap cache. A hit copies the stored compact link lists and
    /// re-reads only per-link capacities (fault state and the sharing
    /// penalty are applied fresh); a miss rebuilds the remap exactly as
    /// [`Self::build_problem`] does and stores it for next time.
    fn fill_problem_cached(&self, ids: &[FlowId], s: &mut NetSolver) {
        let n = ids.len();
        if s.demands.len() > n {
            s.demands.truncate(n);
        }
        while s.demands.len() < n {
            s.demands.push(FlowDemand {
                links: Vec::new(),
                cap: None,
                guaranteed: false,
            });
        }
        let key = self.component_key(ids);
        // Fast path: if every member's arena stamp matches the entry, the
        // component is provably the same flows with unrepinned routes (a
        // recycled slot carries a fresh generation, a re-pin bumps it), so
        // the exact per-link verification below is redundant. Stamps are
        // empty under map-backed oracle storage, which always deep-checks.
        let fast_hit = s.remap.get(&key).is_some_and(|e| {
            !e.stamps.is_empty()
                && e.stamps.len() == n
                && ids
                    .iter()
                    .zip(&e.stamps)
                    .all(|(&id, &st)| self.flows.stamp(id) == Some(st))
        });
        let hit = fast_hit
            || s.remap.get(&key).is_some_and(|e| {
                e.sigs.len() == n
                    && ids.iter().enumerate().all(|(i, &id)| {
                        let f = self.flow(id);
                        let (lo, hi) = (e.offsets[i] as usize, e.offsets[i + 1] as usize);
                        f.route_sig == e.sigs[i]
                            && f.spec.tenant == e.tenants[i]
                            && f.spec.guaranteed == e.guaranteed[i]
                            && f.route.links.len() == hi - lo
                            && f.route
                                .links
                                .iter()
                                .zip(&e.real_links_flat[lo..hi])
                                .all(|(l, &rl)| l.index() == rl as usize)
                    })
            });
        if hit {
            s.remap_hits += 1;
            if fast_hit {
                s.remap_fast_hits += 1;
            } else if !self.flows.is_map_backed() {
                // Deep-verified hit with stale (or missing) stamps — e.g.
                // an identically-shaped component whose flows were
                // recycled. Refresh so steady state takes the fast path.
                let stamps: Option<Vec<u64>> = ids.iter().map(|&id| self.flows.stamp(id)).collect();
                if let Some(stamps) = stamps {
                    s.remap.get_mut(&key).expect("checked above").stamps = stamps;
                }
            }
            let e = &s.remap[&key];
            for (i, &id) in ids.iter().enumerate() {
                let f = self.flow(id);
                let d = &mut s.demands[i];
                d.links.clear();
                d.links.extend(
                    e.links[e.offsets[i] as usize..e.offsets[i + 1] as usize]
                        .iter()
                        .map(|&l| l as usize),
                );
                d.cap = f.spec.rate_cap;
                d.guaranteed = f.spec.guaranteed;
            }
            s.caps.clear();
            s.caps.extend(
                e.real_link
                    .iter()
                    .map(|&rl| self.effective_capacity(rl as usize)),
            );
            if self.cross_tenant_penalty > 0.0 {
                for (cl, &shared) in e.shared.iter().enumerate() {
                    if shared {
                        s.caps[cl] = s.caps[cl] * (1.0 - self.cross_tenant_penalty);
                    }
                }
            }
            return;
        }
        s.remap_misses += 1;
        let mut compact: HashMap<usize, usize> = HashMap::new();
        let mut real_link: Vec<u32> = Vec::new();
        let mut shared_flags: Vec<bool> = Vec::new();
        let mut link_first_tenant: Vec<u32> = Vec::new();
        let mut offsets: Vec<u32> = Vec::with_capacity(n + 1);
        let mut flat_links: Vec<u32> = Vec::new();
        let mut real_links_flat: Vec<u32> = Vec::new();
        let mut sigs: Vec<u64> = Vec::with_capacity(n);
        let mut tenants: Vec<u32> = Vec::with_capacity(n);
        let mut guaranteed_flags: Vec<bool> = Vec::with_capacity(n);
        offsets.push(0);
        s.caps.clear();
        for (i, &id) in ids.iter().enumerate() {
            let f = self.flow(id);
            debug_assert!(f.active(), "solving for a paused flow");
            let tenant = f.spec.tenant;
            let counts_for_sharing = !f.spec.guaranteed;
            let d = &mut s.demands[i];
            d.links.clear();
            for l in f.route.links.iter() {
                let idx = l.index();
                let cl = *compact.entry(idx).or_insert_with(|| {
                    s.caps.push(self.effective_capacity(idx));
                    real_link.push(idx as u32);
                    shared_flags.push(false);
                    link_first_tenant.push(u32::MAX);
                    s.caps.len() - 1
                });
                d.links.push(cl);
                flat_links.push(cl as u32);
                real_links_flat.push(idx as u32);
                if counts_for_sharing {
                    match link_first_tenant[cl] {
                        u32::MAX => link_first_tenant[cl] = tenant,
                        t if t != tenant => shared_flags[cl] = true,
                        _ => {}
                    }
                }
            }
            offsets.push(flat_links.len() as u32);
            d.cap = f.spec.rate_cap;
            d.guaranteed = f.spec.guaranteed;
            sigs.push(f.route_sig);
            tenants.push(tenant);
            guaranteed_flags.push(f.spec.guaranteed);
        }
        if self.cross_tenant_penalty > 0.0 {
            for (cl, &shared) in shared_flags.iter().enumerate() {
                if shared {
                    s.caps[cl] = s.caps[cl] * (1.0 - self.cross_tenant_penalty);
                }
            }
        }
        if s.remap.len() >= REMAP_CACHE_LIMIT {
            s.remap.clear();
        }
        let stamps: Vec<u64> = ids
            .iter()
            .map(|&id| self.flows.stamp(id))
            .collect::<Option<Vec<u64>>>()
            .unwrap_or_default();
        s.remap.insert(
            key,
            RemapEntry {
                stamps,
                sigs,
                offsets,
                links: flat_links,
                real_links_flat,
                tenants,
                guaranteed: guaranteed_flags,
                real_link,
                shared: shared_flags,
            },
        );
    }

    /// (hits, misses) of the component remap cache — benchmark/test probe.
    pub fn remap_cache_stats(&self) -> (u64, u64) {
        (self.solver.remap_hits, self.solver.remap_misses)
    }

    /// Hits confirmed by the O(membership) arena-stamp compare alone
    /// (subset of the hits above) — benchmark/test probe.
    pub fn remap_fast_hits(&self) -> u64 {
        self.solver.remap_fast_hits
    }

    /// Build the allocation problem for `ids`. Remaps to the compact set
    /// of links those flows actually cross: the allocator's cost is then
    /// proportional to the traffic touched by a change, not to the whole
    /// fabric (the 768-GPU cluster has ~14k links but a few hundred busy
    /// ones at any instant).
    fn build_problem(&self, ids: &[FlowId]) -> (Vec<FlowDemand>, Vec<Bandwidth>) {
        let mut compact: HashMap<usize, usize> = HashMap::new();
        let mut compact_caps: Vec<Bandwidth> = Vec::new();
        // (first tenant seen, shared across tenants?) per compact link
        let mut link_tenants: Vec<(u32, bool)> = Vec::new();
        let mut demands = Vec::new();
        for &id in ids {
            let f = self.flow(id);
            debug_assert!(f.active(), "solving for a paused flow");
            let tenant = f.spec.tenant;
            // Guaranteed (background) flows model aggregate external
            // traffic whose cost is already its bandwidth share; only
            // tenant collective flows trigger the cross-tenant penalty.
            let counts_for_sharing = !f.spec.guaranteed;
            let links: Vec<usize> = f
                .route
                .links
                .iter()
                .map(|l| {
                    let idx = l.index();
                    *compact.entry(idx).or_insert_with(|| {
                        compact_caps.push(self.effective_capacity(idx));
                        link_tenants.push((u32::MAX, false));
                        compact_caps.len() - 1
                    })
                })
                .collect();
            if counts_for_sharing {
                for &cl in &links {
                    match link_tenants[cl].0 {
                        u32::MAX => link_tenants[cl].0 = tenant,
                        t if t != tenant => link_tenants[cl].1 = true,
                        _ => {}
                    }
                }
            }
            demands.push(FlowDemand {
                links,
                cap: f.spec.rate_cap,
                guaranteed: f.spec.guaranteed,
            });
        }
        if self.cross_tenant_penalty > 0.0 {
            for (cl, &(_, shared)) in link_tenants.iter().enumerate() {
                if shared {
                    compact_caps[cl] = compact_caps[cl] * (1.0 - self.cross_tenant_penalty);
                }
            }
        }
        (demands, compact_caps)
    }
}

/// Flows within half a byte of done are done (floating-point slack).
const COMPLETION_EPSILON_BYTES: f64 = 0.5;

/// Default capacity loss on links shared across tenants: RoCE flows from
/// different tenants do not coordinate their congestion control, so a
/// collision costs goodput beyond the fluid fair share (the effect the
/// paper's PFA isolation avoids).
pub const DEFAULT_CROSS_TENANT_PENALTY: f64 = 0.3;

#[cfg(test)]
mod tests {
    use super::*;
    use mccs_topology::{presets, NicId};

    fn testbed_net() -> Network {
        Network::new(Arc::new(presets::testbed()))
    }

    /// NICs 0..7, host h has NICs 2h, 2h+1. Hosts 0-1 rack 0, 2-3 rack 1.
    fn nic(n: u32) -> NicId {
        NicId(n)
    }

    #[test]
    fn single_flow_runs_at_line_rate_and_completes_exactly() {
        let mut net = testbed_net();
        // same-rack flow: bottleneck is the 50G NIC links.
        let id = net.start_flow(
            Nanos::ZERO,
            FlowSpec::ecmp(nic(0), nic(2), Bytes::mib(64), 0),
        );
        assert!((net.flow_rate(id).as_gbps() - 50.0).abs() < 1e-6);
        let expect = Bandwidth::gbps(50.0).transfer_time(Bytes::mib(64));
        let next = net.next_completion_time().expect("one flow");
        assert!(next.as_nanos().abs_diff(expect.as_nanos()) <= 1);
        let done = net.advance_to(Nanos::from_secs(1));
        assert_eq!(done.len(), 1);
        assert!(done[0].finished_at.as_nanos().abs_diff(expect.as_nanos()) <= 1);
        assert_eq!(net.flow_count(), 0);
    }

    #[test]
    fn sharing_then_speedup_after_completion() {
        let mut net = testbed_net();
        // Two same-rack flows sharing the destination NIC downlink.
        let a = net.start_flow(
            Nanos::ZERO,
            FlowSpec::ecmp(nic(0), nic(2), Bytes::mib(10), 0),
        );
        let b = net.start_flow(
            Nanos::ZERO,
            FlowSpec::ecmp(nic(1), nic(2), Bytes::mib(30), 1),
        );
        // wait: flows to the SAME nic share its 50G downlink -> 25G each
        assert!((net.flow_rate(a).as_gbps() - 25.0).abs() < 1e-6);
        assert!((net.flow_rate(b).as_gbps() - 25.0).abs() < 1e-6);
        let done = net.advance_to(Nanos::from_secs(10));
        assert_eq!(done.len(), 2);
        // A finishes 10MiB at 25G; B then accelerates to 50G.
        let t_a = Bandwidth::gbps(25.0).transfer_time(Bytes::mib(10));
        assert!(done[0].finished_at.as_nanos().abs_diff(t_a.as_nanos()) <= 1);
        let rem_t = Bandwidth::gbps(25.0)
            .transfer_time(Bytes::mib(10))
            .as_secs_f64()
            + Bandwidth::gbps(25.0)
                .transfer_time(Bytes::mib(10))
                .as_secs_f64()
            + Bandwidth::gbps(50.0)
                .transfer_time(Bytes::mib(10))
                .as_secs_f64();
        // B: 10MiB at 25G alongside A, then 20MiB at 50G.
        let expect_b = Nanos::from_secs_f64(
            Bandwidth::gbps(25.0)
                .transfer_time(Bytes::mib(10))
                .as_secs_f64()
                + Bandwidth::gbps(50.0)
                    .transfer_time(Bytes::mib(20))
                    .as_secs_f64(),
        );
        let got = done[1].finished_at;
        let diff = got.as_secs_f64() - expect_b.as_secs_f64();
        assert!(
            diff.abs() < 1e-6,
            "B finished at {got}, expected {expect_b} ({rem_t})"
        );
    }

    #[test]
    fn ecmp_collision_vs_pinned_routes() {
        let net_paths = |h1: u64, h2: u64| {
            let mut net = testbed_net();
            // two cross-rack flows host0 -> host2, one per NIC pair
            let a = net.start_flow(
                Nanos::ZERO,
                FlowSpec::ecmp(nic(0), nic(4), Bytes::mib(100), h1),
            );
            let b = net.start_flow(
                Nanos::ZERO,
                FlowSpec::ecmp(nic(1), nic(5), Bytes::mib(100), h2),
            );
            (net.flow_rate(a).as_gbps(), net.flow_rate(b).as_gbps())
        };
        // find hash pairs demonstrating collision and spread
        let mut saw_collision = false;
        let mut saw_spread = false;
        for h in 0..16u64 {
            let (ra, rb) = net_paths(h, h + 16);
            if (ra - 25.0).abs() < 1e-6 && (rb - 25.0).abs() < 1e-6 {
                saw_collision = true;
            }
            if (ra - 50.0).abs() < 1e-6 && (rb - 50.0).abs() < 1e-6 {
                saw_spread = true;
            }
        }
        assert!(saw_collision, "ECMP never collided in 16 draws");
        assert!(saw_spread, "ECMP never spread in 16 draws");

        // Pinned routes never collide.
        let mut net = testbed_net();
        let a = net.start_flow(
            Nanos::ZERO,
            FlowSpec::pinned(nic(0), nic(4), Bytes::mib(100), RouteId(0)),
        );
        let b = net.start_flow(
            Nanos::ZERO,
            FlowSpec::pinned(nic(1), nic(5), Bytes::mib(100), RouteId(1)),
        );
        assert!((net.flow_rate(a).as_gbps() - 50.0).abs() < 1e-6);
        assert!((net.flow_rate(b).as_gbps() - 50.0).abs() < 1e-6);
    }

    #[test]
    fn background_flow_steals_capacity() {
        let mut net = testbed_net();
        // Fixed 40G background flow on route 0 between racks.
        let bg = net.start_flow(
            Nanos::ZERO,
            FlowSpec {
                src: nic(0),
                dst: nic(4),
                bytes: None,
                routing: RouteChoice::Pinned(RouteId(0)),
                rate_cap: Some(Bandwidth::gbps(40.0)),
                tag: 0,
                guaranteed: true,
                tenant: u32::MAX,
            },
        );
        let f = net.start_flow(
            Nanos::ZERO,
            FlowSpec::pinned(nic(1), nic(5), Bytes::mib(100), RouteId(0)),
        );
        // The 50G spine link has 40G taken -> 10G left for the real flow.
        assert!((net.flow_rate(f).as_gbps() - 10.0).abs() < 1e-6);
        // Unbounded flows never produce completions.
        let done = net.advance_to(Nanos::from_millis(1));
        assert!(done.is_empty());
        assert!(net.contains(bg));
        // Cancel the background flow: the real flow accelerates to 50G.
        net.cancel_flow(net.now(), bg);
        assert!((net.flow_rate(f).as_gbps() - 50.0).abs() < 1e-6);
    }

    #[test]
    fn pause_resume_gates_bandwidth() {
        let mut net = testbed_net();
        let f = net.start_flow(
            Nanos::ZERO,
            FlowSpec::ecmp(nic(0), nic(2), Bytes::mib(50), 0),
        );
        net.set_paused(Nanos::from_millis(1), f, true);
        assert_eq!(net.flow_rate(f).as_bps(), 0.0);
        assert_eq!(net.next_completion_time(), None);
        let done = net.advance_to(Nanos::from_millis(5));
        assert!(done.is_empty());
        net.set_paused(Nanos::from_millis(5), f, false);
        assert!((net.flow_rate(f).as_gbps() - 50.0).abs() < 1e-6);
        // progress during the pause was zero: completion shifted by 4ms.
        let expect = Nanos::from_millis(1) // progress before pause was at 50G for 1ms
            .max(Nanos::ZERO);
        let _ = expect;
        let done = net.advance_to(Nanos::from_secs(1));
        assert_eq!(done.len(), 1);
        let t50 = Bandwidth::gbps(50.0).transfer_time(Bytes::mib(50));
        let expected_finish = t50 + Nanos::from_millis(4);
        let d = done[0].finished_at.as_secs_f64() - expected_finish.as_secs_f64();
        assert!(
            d.abs() < 1e-6,
            "finish {} vs {}",
            done[0].finished_at,
            expected_finish
        );
    }

    #[test]
    fn repin_moves_flow_off_congested_path() {
        let mut net = testbed_net();
        let a = net.start_flow(
            Nanos::ZERO,
            FlowSpec::pinned(nic(0), nic(4), Bytes::gib(1), RouteId(0)),
        );
        let b = net.start_flow(
            Nanos::ZERO,
            FlowSpec::pinned(nic(1), nic(5), Bytes::gib(1), RouteId(0)),
        );
        assert!((net.flow_rate(a).as_gbps() - 25.0).abs() < 1e-6);
        net.repin_flow(Nanos::from_millis(2), b, RouteId(1));
        assert!((net.flow_rate(a).as_gbps() - 50.0).abs() < 1e-6);
        assert!((net.flow_rate(b).as_gbps() - 50.0).abs() < 1e-6);
    }

    #[test]
    fn link_load_and_utilization() {
        let mut net = testbed_net();
        let f = net.start_flow(
            Nanos::ZERO,
            FlowSpec::ecmp(nic(0), nic(2), Bytes::mib(1), 0),
        );
        let route = net.flow_route(f).expect("present").clone();
        for &l in route.links.iter() {
            assert!((net.link_load(l).as_gbps() - 50.0).abs() < 1e-6);
            assert!((net.link_utilization(l) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn rejects_time_reversal() {
        let mut net = testbed_net();
        net.start_flow(
            Nanos::from_secs(1),
            FlowSpec::ecmp(nic(0), nic(2), Bytes::mib(1), 0),
        );
        net.advance_to(Nanos::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "flow to self")]
    fn rejects_self_flow() {
        let mut net = testbed_net();
        net.start_flow(
            Nanos::ZERO,
            FlowSpec::ecmp(nic(0), nic(0), Bytes::mib(1), 0),
        );
    }

    #[test]
    fn link_down_freezes_flows_and_repair_resumes_them() {
        let mut net = testbed_net();
        let f = net.start_flow(
            Nanos::ZERO,
            FlowSpec::ecmp(nic(0), nic(2), Bytes::mib(50), 0),
        );
        let link = net.flow_route(f).expect("present").links[0];
        net.set_link_up(Nanos::from_millis(1), link, false);
        assert!(!net.link_up(link));
        assert_eq!(net.flow_rate(f).as_bps(), 0.0);
        // A stalled flow emits no completion event.
        assert_eq!(net.next_completion_time(), None);
        assert!(net.advance_to(Nanos::from_millis(5)).is_empty());
        net.set_link_up(Nanos::from_millis(5), link, true);
        assert!((net.flow_rate(f).as_gbps() - 50.0).abs() < 1e-6);
        let done = net.advance_to(Nanos::from_secs(1));
        assert_eq!(done.len(), 1);
        // 1ms of progress, 4ms frozen, then the remainder at line rate.
        let t50 = Bandwidth::gbps(50.0).transfer_time(Bytes::mib(50));
        let expect = t50 + Nanos::from_millis(4);
        assert!(done[0].finished_at.as_nanos().abs_diff(expect.as_nanos()) <= 1);
    }

    #[test]
    fn degraded_link_slows_flows_proportionally() {
        let mut net = testbed_net();
        let f = net.start_flow(
            Nanos::ZERO,
            FlowSpec::ecmp(nic(0), nic(2), Bytes::mib(50), 0),
        );
        let link = net.flow_route(f).expect("present").links[0];
        net.set_link_degrade(Nanos::ZERO, link, 0.25);
        assert!((net.flow_rate(f).as_gbps() - 12.5).abs() < 1e-6);
        net.set_link_degrade(Nanos::ZERO, link, 1.0);
        assert!((net.flow_rate(f).as_gbps() - 50.0).abs() < 1e-6);
    }

    #[test]
    fn killed_flows_vanish_without_completions() {
        let mut net = testbed_net();
        let a = net.start_flow(
            Nanos::ZERO,
            FlowSpec::ecmp(nic(0), nic(4), Bytes::mib(100), 0).with_tag(7),
        );
        let b = net.start_flow(
            Nanos::ZERO,
            FlowSpec::ecmp(nic(2), nic(3), Bytes::mib(100), 0),
        );
        let link = net.flow_route(a).expect("present").links[1];
        let victims = net.kill_flows_on_link(Nanos::from_millis(1), link);
        assert_eq!(victims, vec![(a, 7)]);
        assert!(!net.contains(a));
        assert!(net.contains(b), "unrelated flow survives");
        // the survivor still completes normally
        let done = net.advance_to(Nanos::from_secs(60));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, b);
    }

    #[test]
    fn kill_flows_touching_nic_takes_both_directions() {
        let mut net = testbed_net();
        let out = net.start_flow(
            Nanos::ZERO,
            FlowSpec::ecmp(nic(0), nic(4), Bytes::mib(100), 0),
        );
        let inbound = net.start_flow(
            Nanos::ZERO,
            FlowSpec::ecmp(nic(5), nic(0), Bytes::mib(100), 0),
        );
        let other = net.start_flow(
            Nanos::ZERO,
            FlowSpec::ecmp(nic(2), nic(6), Bytes::mib(100), 0),
        );
        let victims = net.kill_flows_touching_nic(Nanos::ZERO, nic(0));
        let ids: Vec<FlowId> = victims.iter().map(|&(id, _)| id).collect();
        assert!(ids.contains(&out) && ids.contains(&inbound));
        assert!(!ids.contains(&other));
        assert!(net.contains(other));
    }

    #[test]
    fn route_healthy_tracks_link_state() {
        let mut net = testbed_net();
        let r0 = net.topo.pinned_route(nic(0), nic(4), RouteId(0));
        let spine = r0.links[1];
        assert!(net.route_healthy(nic(0), nic(4), RouteId(0)));
        net.set_link_up(Nanos::ZERO, spine, false);
        assert!(!net.route_healthy(nic(0), nic(4), RouteId(0)));
        assert!(
            net.route_healthy(nic(0), nic(4), RouteId(1)),
            "the other spine stays healthy"
        );
    }

    #[test]
    fn link_weight_and_route_weight_track_degrades() {
        let mut net = testbed_net();
        let r0 = net.topo.pinned_route(nic(0), nic(4), RouteId(0));
        let spine = r0.links[1];
        assert_eq!(net.link_weight(spine), 1.0);
        assert_eq!(net.route_weight(nic(0), nic(4), RouteId(0)), 1.0);
        net.set_link_degrade(Nanos::ZERO, spine, 0.5);
        assert_eq!(net.link_weight(spine), 0.5);
        assert_eq!(
            net.route_weight(nic(0), nic(4), RouteId(0)),
            0.5,
            "route weight is the bottleneck link weight"
        );
        assert_eq!(
            net.route_weight(nic(0), nic(4), RouteId(1)),
            1.0,
            "the other spine is unaffected"
        );
        let base = net.topo.link(spine).bandwidth;
        assert!((net.link_effective_capacity(spine).as_bps() - base.as_bps() * 0.5).abs() < 1e-6);
        net.set_link_up(Nanos::ZERO, spine, false);
        assert_eq!(net.link_weight(spine), 0.0);
        assert_eq!(net.route_weight(nic(0), nic(4), RouteId(0)), 0.0);
        assert_eq!(net.link_effective_capacity(spine), Bandwidth::ZERO);
        net.set_link_up(Nanos::ZERO, spine, true);
        assert_eq!(
            net.link_weight(spine),
            0.5,
            "repair restores the degraded weight, not full"
        );
    }

    #[test]
    fn remap_cache_hits_on_recurring_component_shapes() {
        let mut net = testbed_net();
        // This test is about the incremental path specifically; pin it on
        // so the oracle-equivalence CI job (MCCS_NETSIM_ORACLE) doesn't
        // turn the assertions vacuous.
        net.set_incremental(true);
        // First solve of each structural shape is a miss...
        let _a = net.start_flow(
            Nanos::ZERO,
            FlowSpec::ecmp(nic(0), nic(2), Bytes::gib(1), 0),
        );
        let b = net.start_flow(
            Nanos::ZERO,
            FlowSpec::ecmp(nic(1), nic(2), Bytes::gib(1), 1),
        );
        assert_eq!(net.remap_cache_stats(), (0, 2));
        // ...but cancelling b returns the component to a's solo shape
        // (seen at admission), and an identically-routed replacement flow
        // recreates the two-flow shape — both hits despite fresh ids.
        net.cancel_flow(Nanos::ZERO, b);
        assert_eq!(net.remap_cache_stats(), (1, 2));
        let _b2 = net.start_flow(
            Nanos::ZERO,
            FlowSpec::ecmp(nic(1), nic(2), Bytes::gib(1), 1),
        );
        assert_eq!(net.remap_cache_stats(), (2, 2));
    }

    #[test]
    fn remap_cache_hit_after_degrade_reads_fresh_capacity() {
        let mut net = testbed_net();
        net.set_incremental(true);
        let f = net.start_flow(
            Nanos::ZERO,
            FlowSpec::ecmp(nic(0), nic(2), Bytes::gib(1), 0),
        );
        let link = net.flow_route(f).expect("present").links[0];
        // Degrading re-solves the same component shape — a cache hit that
        // must still see the reduced capacity.
        net.set_link_degrade(Nanos::ZERO, link, 0.5);
        assert_eq!(net.remap_cache_stats(), (1, 1));
        assert!((net.flow_rate(f).as_gbps() - 25.0).abs() < 1e-6);
    }

    /// Satellite regression: arena slots recycled by a host crash →
    /// restart → re-allocate cycle must not let the remap cache serve
    /// stale per-slot data. The replacement flows land on the dead flows'
    /// slots with fresh generation tags, so the stamp fast path rejects
    /// and the deep verification re-keys the entries.
    #[test]
    fn remap_survives_slot_recycling_after_crash() {
        let mut net = testbed_net();
        net.set_incremental(true);
        net.set_map_storage(false);
        let mut oracle = testbed_net();
        oracle.set_incremental(false);
        oracle.set_map_storage(true);
        let drive = |net: &mut Network| -> Vec<FlowId> {
            let mut live = Vec::new();
            // Two cross-rack flows from host 0 plus one bystander.
            live.push(net.start_flow(
                Nanos::ZERO,
                FlowSpec::ecmp(nic(0), nic(4), Bytes::gib(1), 3).with_tenant(0),
            ));
            live.push(net.start_flow(
                Nanos::ZERO,
                FlowSpec::ecmp(nic(1), nic(5), Bytes::gib(1), 4).with_tenant(0),
            ));
            live.push(net.start_flow(
                Nanos::ZERO,
                FlowSpec::ecmp(nic(2), nic(6), Bytes::gib(1), 5).with_tenant(1),
            ));
            // Host 0 crashes: both its NICs' flows die, freeing slots 0/1.
            for n in [0u32, 1] {
                net.kill_flows_touching_nic(Nanos::from_millis(1), nic(n));
            }
            live.retain(|&id| net.contains(id));
            // Restart re-allocates onto the recycled slots with different
            // routes and tenants than the slots' previous occupants.
            live.push(net.start_flow(
                Nanos::from_millis(2),
                FlowSpec::ecmp(nic(0), nic(2), Bytes::gib(1), 6).with_tenant(2),
            ));
            live.push(net.start_flow(
                Nanos::from_millis(2),
                FlowSpec::ecmp(nic(1), nic(3), Bytes::gib(1), 7).with_tenant(2),
            ));
            live
        };
        let live = drive(&mut net);
        let live_o = drive(&mut oracle);
        assert_eq!(live, live_o, "sequential ids are storage-independent");
        for &id in &live {
            let (r, ro) = (net.flow_rate(id).as_bps(), oracle.flow_rate(id).as_bps());
            assert!(
                (r - ro).abs() <= ro.abs() * 1e-9 + 1e-3,
                "stale remap data for {id:?}: arena {r} vs oracle {ro}"
            );
        }
        // Degrade a recycled flow's first link: the re-solve must read
        // fresh capacity through whatever cache entry now covers the slot.
        let last = *live.last().expect("flows live");
        let link = net.flow_route(last).expect("present").links[0];
        net.set_link_degrade(Nanos::from_millis(3), link, 0.5);
        oracle.set_link_degrade(Nanos::from_millis(3), link, 0.5);
        let (r, ro) = (
            net.flow_rate(last).as_bps(),
            oracle.flow_rate(last).as_bps(),
        );
        assert!(
            (r - ro).abs() <= ro.abs() * 1e-9 + 1e-3,
            "post-degrade divergence on a recycled slot: {r} vs {ro}"
        );
    }

    /// Re-solves of a stable component (same live flows, unchanged
    /// routes) are confirmed by the O(membership) stamp compare alone.
    #[test]
    fn stamp_fast_path_hits_on_stable_components() {
        let mut net = testbed_net();
        net.set_incremental(true);
        net.set_map_storage(false);
        let a = net.start_flow(
            Nanos::ZERO,
            FlowSpec::ecmp(nic(0), nic(2), Bytes::gib(1), 0),
        );
        let _b = net.start_flow(
            Nanos::ZERO,
            FlowSpec::ecmp(nic(1), nic(2), Bytes::gib(1), 1),
        );
        assert_eq!(net.remap_fast_hits(), 0);
        let link = net.flow_route(a).expect("present").links[0];
        // Capacity changes re-solve the identical membership: stamps match.
        net.set_link_degrade(Nanos::ZERO, link, 0.5);
        net.set_link_degrade(Nanos::ZERO, link, 0.25);
        assert!(
            net.remap_fast_hits() >= 2,
            "stable component should fast-hit, got {}",
            net.remap_fast_hits()
        );
        let (hits, _) = net.remap_cache_stats();
        assert!(net.remap_fast_hits() <= hits, "fast hits are a subset");
        // The fast path must still read fresh capacities: a's uplink is
        // now 50 * 0.25 = 12.5 Gbps and that is its bottleneck.
        assert!((net.flow_rate(a).as_gbps() - 12.5).abs() < 1e-6);
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut net = testbed_net();
        net.start_flow(Nanos::ZERO, FlowSpec::ecmp(nic(0), nic(2), Bytes::ZERO, 0));
        let done = net.advance_to(Nanos::ZERO);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].finished_at, Nanos::ZERO);
    }

    /// The worker pool only changes wall-clock: rates and completion
    /// instants are bit-identical at every worker count, in both the
    /// per-link-BFS and rack-partitioned decompositions. Exercises
    /// multi-component churn (disjoint rack-local flows plus cross-rack
    /// couplers starting, finishing and dying) so waves genuinely carry
    /// more than one component to the pool.
    #[test]
    fn worker_count_is_invisible_in_rates() {
        let drive = |workers: usize, hierarchical: bool| -> Vec<(u64, u64)> {
            let mut net = testbed_net();
            net.set_hierarchical(hierarchical);
            net.set_workers(workers);
            assert_eq!(net.workers(), workers.max(1));
            let mut log: Vec<(u64, u64)> = Vec::new();
            let mut now = Nanos::ZERO;
            let mut live: Vec<FlowId> = Vec::new();
            for step in 0u64..40 {
                let (s, t) = ((step % 7) as u32, ((step * 3 + 1) % 8) as u32);
                if s != t {
                    let spec = FlowSpec::ecmp(nic(s), nic(t), Bytes::mib(1 + step % 16), step)
                        .with_tenant((step % 3) as u32);
                    live.push(net.start_flow(now, spec));
                }
                if step % 5 == 4 && !live.is_empty() {
                    let id = live.remove((step as usize * 7) % live.len());
                    if net.contains(id) {
                        net.cancel_flow(now, id);
                    }
                }
                now += Nanos::from_micros(200 + (step % 9) * 130);
                for c in net.advance_to(now) {
                    log.push((c.id.0, c.finished_at.as_nanos()));
                }
                live.retain(|&id| net.contains(id));
                for &id in &live {
                    // Exact bit pattern, not approximate equality.
                    log.push((id.0, net.flow_rate(id).as_bps().to_bits()));
                }
            }
            log
        };
        for hierarchical in [false, true] {
            let seq = drive(1, hierarchical);
            assert!(!seq.is_empty());
            for n in [2, 8] {
                assert_eq!(
                    seq,
                    drive(n, hierarchical),
                    "workers={n} hierarchical={hierarchical}"
                );
            }
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Random flow soups always drain, conserve bytes, and never
            /// oversubscribe the destination NIC line rate in aggregate
            /// (completion throughput bound).
            #[test]
            fn flows_always_drain(
                seeds in proptest::collection::vec((0u32..8, 0u32..8, 1u64..64, any::<u64>()), 1..20)
            ) {
                let mut net = testbed_net();
                let mut expected = 0usize;
                for (i, &(s, d, mib, hash)) in seeds.iter().enumerate() {
                    if s == d { continue; }
                    expected += 1;
                    let start = Nanos::from_micros(i as u64 * 10);
                    net.start_flow(start, FlowSpec::ecmp(nic(s), nic(d), Bytes::mib(mib), hash));
                }
                let done = net.advance_to(Nanos::from_secs(60));
                prop_assert_eq!(done.len(), expected);
                prop_assert_eq!(net.flow_count(), 0);
                // each flow's mean rate can never beat the 50G NIC
                for c in &done {
                    prop_assert!(c.mean_rate().as_gbps() <= 50.0 + 1e-6);
                }
            }

            /// Incremental dirty-link recomputation matches the
            /// from-scratch oracle over random flow-churn sequences
            /// (starts, cancels, pauses, repins, completions, tenants and
            /// capped background flows all mixed), and the incremental
            /// net's rates satisfy the max-min invariants after every op.
            #[test]
            fn incremental_matches_from_scratch_under_churn(
                ops in proptest::collection::vec(
                    (0u8..8, 0u32..8, 0u32..8, 0u64..64, any::<u64>()), 1..32)
            ) {
                let mut inc = testbed_net();
                inc.set_incremental(true);
                let mut full = testbed_net();
                full.set_incremental(false);
                let mut now = Nanos::ZERO;
                // (id, src, dst) of flows not yet finished or cancelled
                let mut live: Vec<(FlowId, u32, u32)> = Vec::new();
                for &(kind, a, b, c, d) in &ops {
                    match kind {
                        0..=2 => {
                            let (s, t) = (a % 8, b % 8);
                            if s == t { continue; }
                            let spec = FlowSpec::ecmp(nic(s), nic(t), Bytes::mib(1 + c % 64), d)
                                .with_tenant(a % 3);
                            let i1 = inc.start_flow(now, spec);
                            let i2 = full.start_flow(now, spec);
                            prop_assert_eq!(i1, i2);
                            live.push((i1, s, t));
                        }
                        3 => {
                            // capped, guaranteed background traffic
                            let (s, t) = (a % 8, b % 8);
                            if s == t { continue; }
                            let rate = Bandwidth::gbps(5.0 + (c % 40) as f64);
                            let spec = FlowSpec::background(nic(s), nic(t), rate, d);
                            let i1 = inc.start_flow(now, spec);
                            let i2 = full.start_flow(now, spec);
                            prop_assert_eq!(i1, i2);
                            live.push((i1, s, t));
                        }
                        4 => {
                            if live.is_empty() { continue; }
                            let (id, _, _) = live.remove((c as usize) % live.len());
                            inc.cancel_flow(now, id);
                            full.cancel_flow(now, id);
                        }
                        5 => {
                            if live.is_empty() { continue; }
                            let (id, _, _) = live[(c as usize) % live.len()];
                            let paused = d % 2 == 0;
                            inc.set_paused(now, id, paused);
                            full.set_paused(now, id, paused);
                        }
                        6 => {
                            now += Nanos::from_micros(1 + c % 2000);
                            let done_inc = inc.advance_to(now);
                            let done_full = full.advance_to(now);
                            let t_inc: BTreeMap<FlowId, Nanos> =
                                done_inc.iter().map(|x| (x.id, x.finished_at)).collect();
                            let t_full: BTreeMap<FlowId, Nanos> =
                                done_full.iter().map(|x| (x.id, x.finished_at)).collect();
                            prop_assert_eq!(
                                t_inc.keys().collect::<Vec<_>>(),
                                t_full.keys().collect::<Vec<_>>()
                            );
                            for (id, ti) in &t_inc {
                                let tf = t_full[id];
                                prop_assert!(
                                    ti.as_nanos().abs_diff(tf.as_nanos()) <= 1,
                                    "completion time diverged for {:?}: {} vs {}", id, ti, tf
                                );
                            }
                            live.retain(|(id, _, _)| inc.contains(*id));
                        }
                        _ => {
                            // repin a cross-rack flow onto an explicit spine
                            if live.is_empty() { continue; }
                            let (id, s, t) = live[(c as usize) % live.len()];
                            if (s < 4) == (t < 4) { continue; }
                            let route = RouteId((d % 2) as u32);
                            inc.repin_flow(now, id, route);
                            full.repin_flow(now, id, route);
                        }
                    }
                    // 1. Every live flow's rate matches the oracle.
                    for &(id, _, _) in &live {
                        let ri = inc.flow_rate(id).as_bps();
                        let rf = full.flow_rate(id).as_bps();
                        prop_assert!(
                            (ri - rf).abs() <= rf.abs() * 1e-9 + 1e-3,
                            "rate diverged for {:?}: incremental {} vs full {}", id, ri, rf
                        );
                    }
                    // 2. The incremental rates are a valid max-min
                    // allocation in their own right.
                    let mut ids: Vec<FlowId> = Vec::new();
                    inc.flows.for_each_ordered(|i, f| {
                        if f.active() {
                            ids.push(i);
                        }
                    });
                    let (demands, caps) = inc.build_problem(&ids);
                    let rates: Vec<Bandwidth> =
                        ids.iter().map(|&i| inc.flow_rate(i)).collect();
                    crate::maxmin::check_invariants_with_priority(&demands, &caps, &rates);
                }
            }

            /// Storage representation (arena vs map) and solver scope
            /// (rack-hierarchical vs global dirty-link BFS vs full
            /// from-scratch) are interchangeable: identical flow ids,
            /// rates and completion times over random churn, including
            /// crash-driven slot recycling (`kill_flows_touching_nic`).
            #[test]
            fn storage_and_solver_modes_match_under_churn(
                ops in proptest::collection::vec(
                    (0u8..8, 0u32..8, 0u32..8, 0u64..64, any::<u64>()), 1..24)
            ) {
                // The default fast path: dense arenas + rack-partitioned solve.
                let mut fast = testbed_net();
                fast.set_incremental(true);
                fast.set_map_storage(false);
                fast.set_hierarchical(true);
                // Map-backed storage with the global dirty-link BFS.
                let mut mapg = testbed_net();
                mapg.set_incremental(true);
                mapg.set_map_storage(true);
                mapg.set_hierarchical(false);
                // The from-scratch oracle.
                let mut full = testbed_net();
                full.set_incremental(false);
                let mut now = Nanos::ZERO;
                let mut live: Vec<(FlowId, u32, u32)> = Vec::new();
                for &(kind, a, b, c, d) in &ops {
                    match kind {
                        0..=3 => {
                            let (s, t) = (a % 8, b % 8);
                            if s == t { continue; }
                            let spec = FlowSpec::ecmp(nic(s), nic(t), Bytes::mib(1 + c % 64), d)
                                .with_tenant(a % 3);
                            let mut ids = Vec::new();
                            for n in [&mut fast, &mut mapg, &mut full] {
                                ids.push(n.start_flow(now, spec));
                            }
                            prop_assert!(ids.windows(2).all(|w| w[0] == w[1]),
                                "ids diverged across modes: {:?}", ids);
                            live.push((ids[0], s, t));
                        }
                        4 => {
                            if live.is_empty() { continue; }
                            let (id, _, _) = live.remove((c as usize) % live.len());
                            for n in [&mut fast, &mut mapg, &mut full] {
                                n.cancel_flow(now, id);
                            }
                        }
                        5 => {
                            // Host crash: everything touching one NIC dies,
                            // freeing arena slots for the next starts.
                            let victim = nic(a % 8);
                            for n in [&mut fast, &mut mapg, &mut full] {
                                n.kill_flows_touching_nic(now, victim);
                            }
                            live.retain(|(id, _, _)| fast.contains(*id));
                        }
                        6 => {
                            now += Nanos::from_micros(1 + c % 2000);
                            let mut done: Vec<Vec<(FlowId, Nanos)>> = Vec::new();
                            for n in [&mut fast, &mut mapg, &mut full] {
                                done.push(
                                    n.advance_to(now).iter()
                                        .map(|x| (x.id, x.finished_at)).collect(),
                                );
                            }
                            prop_assert_eq!(
                                done[0].iter().map(|x| x.0).collect::<Vec<_>>(),
                                done[1].iter().map(|x| x.0).collect::<Vec<_>>()
                            );
                            for (i, &(id, t0)) in done[0].iter().enumerate() {
                                let t1 = done[1][i].1;
                                prop_assert!(
                                    t0.as_nanos().abs_diff(t1.as_nanos()) <= 1,
                                    "completion diverged for {:?}: {} vs {}", id, t0, t1
                                );
                            }
                            // Oracle completions may reorder within a tick
                            // relative to the incremental nets only through
                            // ±1ns rounding; compare as sets.
                            let k2: BTreeMap<FlowId, Nanos> = done[2].iter().copied().collect();
                            for &(id, t0) in &done[0] {
                                let t2 = k2.get(&id).copied();
                                prop_assert!(t2.is_some(), "oracle missed completion {:?}", id);
                                prop_assert!(
                                    t0.as_nanos().abs_diff(t2.unwrap().as_nanos()) <= 1,
                                    "oracle completion diverged for {:?}", id
                                );
                            }
                            live.retain(|(id, _, _)| fast.contains(*id));
                        }
                        _ => {
                            if live.is_empty() { continue; }
                            let (id, s, t) = live[(c as usize) % live.len()];
                            if (s < 4) == (t < 4) { continue; }
                            let route = RouteId((d % 2) as u32);
                            for n in [&mut fast, &mut mapg, &mut full] {
                                n.repin_flow(now, id, route);
                            }
                        }
                    }
                    for &(id, _, _) in &live {
                        let r0 = fast.flow_rate(id).as_bps();
                        let r1 = mapg.flow_rate(id).as_bps();
                        let r2 = full.flow_rate(id).as_bps();
                        prop_assert!(
                            (r0 - r1).abs() <= r1.abs() * 1e-9 + 1e-3,
                            "rate diverged for {:?}: hier {} vs global {}", id, r0, r1
                        );
                        prop_assert!(
                            (r0 - r2).abs() <= r2.abs() * 1e-9 + 1e-3,
                            "rate diverged for {:?}: hier {} vs oracle {}", id, r0, r2
                        );
                    }
                }
            }

            /// Completions come out in time order.
            #[test]
            fn completions_time_ordered(
                seeds in proptest::collection::vec((0u32..4, 4u32..8, 1u64..32, any::<u64>()), 2..16)
            ) {
                let mut net = testbed_net();
                for &(s, d, mib, hash) in &seeds {
                    net.start_flow(Nanos::ZERO, FlowSpec::ecmp(nic(s), nic(d), Bytes::mib(mib), hash));
                }
                let done = net.advance_to(Nanos::from_secs(60));
                prop_assert!(done.windows(2).all(|w| w[0].finished_at <= w[1].finished_at));
            }
        }
    }
}
