//! Flow descriptions and lifecycle records.

use mccs_sim::{Bandwidth, Bytes, Nanos};
use mccs_topology::{NicId, RouteId};

/// Identifies a flow within one [`crate::Network`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(pub u64);

/// How a flow's path through the fabric is chosen.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RouteChoice {
    /// Hash over the equal-cost path set — what a tenant-side library gets
    /// from the network by default. The hash models the five-tuple: NCCL's
    /// multiple connections between a host pair carry distinct hashes and
    /// may or may not collide onto one physical path.
    Ecmp {
        /// Surrogate for the flow five-tuple fed to the switch hash.
        hash: u64,
    },
    /// An explicitly pinned equal-cost choice — MCCS's route control
    /// (route id -> RoCEv2 UDP source port -> policy-based routing).
    Pinned(RouteId),
}

/// A request to move bytes between two NICs.
#[derive(Clone, Copy, Debug)]
pub struct FlowSpec {
    /// Transmitting NIC.
    pub src: NicId,
    /// Receiving NIC.
    pub dst: NicId,
    /// Bytes to move; `None` is an unbounded background flow that runs
    /// until cancelled.
    pub bytes: Option<Bytes>,
    /// Path selection.
    pub routing: RouteChoice,
    /// Optional sender-side rate cap (used, e.g., for the fixed 75 Gbps
    /// background flow of Figure 7).
    pub rate_cap: Option<Bandwidth>,
    /// Opaque owner tag, echoed in completions (job id, channel id, ...).
    pub tag: u64,
    /// Strict-priority flows take their cap before fair flows share the
    /// remainder (models non-collective background traffic).
    pub guaranteed: bool,
    /// Owning tenant. Links shared by multiple tenants pay the network's
    /// cross-tenant sharing penalty (uncoordinated congestion control);
    /// one tenant's own flows share a link fluidly.
    pub tenant: u32,
}

impl FlowSpec {
    /// A bounded ECMP-routed flow with no cap.
    pub fn ecmp(src: NicId, dst: NicId, bytes: Bytes, hash: u64) -> Self {
        FlowSpec {
            src,
            dst,
            bytes: Some(bytes),
            routing: RouteChoice::Ecmp { hash },
            rate_cap: None,
            tag: 0,
            guaranteed: false,
            tenant: 0,
        }
    }

    /// A bounded flow pinned to an explicit route.
    pub fn pinned(src: NicId, dst: NicId, bytes: Bytes, route: RouteId) -> Self {
        FlowSpec {
            src,
            dst,
            bytes: Some(bytes),
            routing: RouteChoice::Pinned(route),
            rate_cap: None,
            tag: 0,
            guaranteed: false,
            tenant: 0,
        }
    }

    /// An unbounded background flow at a fixed rate, ECMP-routed.
    pub fn background(src: NicId, dst: NicId, rate: Bandwidth, hash: u64) -> Self {
        FlowSpec {
            src,
            dst,
            bytes: None,
            routing: RouteChoice::Ecmp { hash },
            rate_cap: Some(rate),
            tag: 0,
            guaranteed: true,
            tenant: u32::MAX, // background traffic is its own tenant
        }
    }

    /// Attach an owner tag.
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }

    /// Attach a tenant id.
    pub fn with_tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }
}

/// Emitted when a bounded flow finishes.
#[derive(Clone, Copy, Debug)]
pub struct FlowCompletion {
    /// The finished flow.
    pub id: FlowId,
    /// Its owner tag.
    pub tag: u64,
    /// When it was admitted.
    pub started_at: Nanos,
    /// When the last byte arrived.
    pub finished_at: Nanos,
    /// Bytes moved.
    pub bytes: Bytes,
}

impl FlowCompletion {
    /// Flow completion time.
    pub fn duration(&self) -> Nanos {
        self.finished_at - self.started_at
    }

    /// Mean goodput over the flow's lifetime.
    pub fn mean_rate(&self) -> Bandwidth {
        let secs = self.duration().as_secs_f64();
        if secs <= 0.0 {
            Bandwidth::ZERO
        } else {
            Bandwidth::bytes_per_sec(self.bytes.as_f64() / secs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_constructors() {
        let f = FlowSpec::ecmp(NicId(0), NicId(1), Bytes::mib(1), 7).with_tag(42);
        assert_eq!(f.tag, 42);
        assert_eq!(f.bytes, Some(Bytes::mib(1)));
        assert!(matches!(f.routing, RouteChoice::Ecmp { hash: 7 }));

        let p = FlowSpec::pinned(NicId(0), NicId(1), Bytes::kib(4), RouteId(1));
        assert!(matches!(p.routing, RouteChoice::Pinned(RouteId(1))));

        let b = FlowSpec::background(NicId(0), NicId(1), Bandwidth::gbps(75.0), 0);
        assert_eq!(b.bytes, None);
        assert!((b.rate_cap.expect("capped").as_gbps() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn completion_math() {
        let c = FlowCompletion {
            id: FlowId(1),
            tag: 0,
            started_at: Nanos::from_secs(1),
            finished_at: Nanos::from_secs(3),
            bytes: Bytes::new(2_000_000_000),
        };
        assert_eq!(c.duration(), Nanos::from_secs(2));
        assert!((c.mean_rate().as_gbps() - 8.0).abs() < 1e-9);
    }
}
