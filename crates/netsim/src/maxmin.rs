//! Max-min fair rate allocation (water-filling) with per-flow caps.
//!
//! Pure function: given each flow's traversed links (and optional rate
//! cap) and each link's capacity, compute the max-min fair allocation by
//! progressive filling. The classic invariants hold and are enforced by
//! property tests:
//!
//! 1. **Feasibility** — no link carries more than its capacity.
//! 2. **Cap respect** — no flow exceeds its cap.
//! 3. **Bottleneck justification** — every flow is either at its cap or
//!    traverses a saturated link on which it has a maximal rate.
//!
//! Complexity is `O(rounds × (flows + links))` with at most `flows`
//! rounds; the testbed experiments run dozens of flows and the §6.5
//! cluster a few thousand, both comfortably fast.

use mccs_sim::Bandwidth;

/// One flow's allocation inputs.
#[derive(Clone, Debug)]
pub struct FlowDemand {
    /// Dense indices of the links the flow traverses.
    pub links: Vec<usize>,
    /// Optional sender-side cap.
    pub cap: Option<Bandwidth>,
    /// Guaranteed (strict-priority) flows are allocated first, taking up to
    /// their cap before fair flows share the remainder — how the paper's
    /// Figure 7 background traffic holds 75 of 100 Gbps regardless of the
    /// collective's demand.
    pub guaranteed: bool,
}

impl FlowDemand {
    /// A fair (best-effort) flow.
    pub fn fair(links: Vec<usize>, cap: Option<Bandwidth>) -> Self {
        FlowDemand {
            links,
            cap,
            guaranteed: false,
        }
    }
}

/// Reusable scratch for [`allocate_with_priority_into`]: the frozen /
/// remaining / active-count vectors and the class-partition index lists
/// that [`allocate`] and [`allocate_with_priority`] would otherwise
/// allocate afresh on every solve. Hold one per solver and thread it
/// through repeated solves; steady-state churn then allocates nothing.
#[derive(Debug, Default)]
pub struct SolverScratch {
    fill: FillBuffers,
    hi_idx: Vec<usize>,
    lo_idx: Vec<usize>,
}

#[derive(Debug, Default)]
struct FillBuffers {
    frozen: Vec<bool>,
    remaining: Vec<f64>,
    active_count: Vec<usize>,
}

/// Scratch-reusing equivalent of [`allocate_with_priority`]: writes one
/// rate per flow (in input order) into `out`, reusing `scratch` buffers
/// instead of allocating. Produces bit-identical results to the oracle —
/// the priority classes are water-filled as index subsets in the same
/// relative order the oracle's filtered clones would visit them, and the
/// leftover capacities after the guaranteed pass are recomputed in input
/// order exactly as [`allocate_with_priority`] does.
pub fn allocate_with_priority_into(
    flows: &[FlowDemand],
    capacities: &[Bandwidth],
    scratch: &mut SolverScratch,
    out: &mut Vec<Bandwidth>,
) {
    out.clear();
    out.resize(flows.len(), Bandwidth::ZERO);
    scratch.hi_idx.clear();
    scratch.lo_idx.clear();
    for (i, f) in flows.iter().enumerate() {
        if f.guaranteed {
            scratch.hi_idx.push(i);
        } else {
            scratch.lo_idx.push(i);
        }
    }
    scratch.fill.remaining.clear();
    scratch
        .fill
        .remaining
        .extend(capacities.iter().map(|c| c.as_bps()));
    if scratch.hi_idx.is_empty() {
        water_fill(flows, &scratch.lo_idx, &mut scratch.fill, out);
        return;
    }
    water_fill(flows, &scratch.hi_idx, &mut scratch.fill, out);
    // Recompute the leftover from the original capacities in input order,
    // mirroring the oracle (the fill's internal `remaining` subtracts in
    // freeze order, which differs in the last ulp).
    scratch.fill.remaining.clear();
    scratch
        .fill
        .remaining
        .extend(capacities.iter().map(|c| c.as_bps()));
    for &i in &scratch.hi_idx {
        for &l in &flows[i].links {
            scratch.fill.remaining[l] = (scratch.fill.remaining[l] - out[i].as_bps()).max(0.0);
        }
    }
    water_fill(flows, &scratch.lo_idx, &mut scratch.fill, out);
}

/// Progressive filling over the subset `subset` of `flows`, against the
/// per-link capacities pre-loaded into `buf.remaining` (consumed). Writes
/// `out[i]` for each `i` in `subset`; other slots are untouched. The loop
/// body is the same arithmetic in the same order as [`allocate`], so a
/// subset fill is bit-identical to `allocate` over the filtered clone.
fn water_fill(
    flows: &[FlowDemand],
    subset: &[usize],
    buf: &mut FillBuffers,
    out: &mut [Bandwidth],
) {
    if subset.is_empty() {
        return;
    }
    let nl = buf.remaining.len();
    buf.frozen.clear();
    buf.frozen.resize(subset.len(), false);
    buf.active_count.clear();
    buf.active_count.resize(nl, 0);
    for &i in subset {
        for &l in &flows[i].links {
            buf.active_count[l] += 1;
        }
    }
    let fallback_cap = buf.remaining.iter().copied().fold(0.0_f64, f64::max);

    let mut unfrozen = subset.len();
    while unfrozen > 0 {
        let mut level = f64::INFINITY;
        for l in 0..nl {
            if buf.active_count[l] > 0 {
                level = level.min(buf.remaining[l] / buf.active_count[l] as f64);
            }
        }
        for (slot, &i) in subset.iter().enumerate() {
            if buf.frozen[slot] {
                continue;
            }
            if let Some(cap) = flows[i].cap {
                level = level.min(cap.as_bps());
            }
        }
        if !level.is_finite() {
            for (slot, &i) in subset.iter().enumerate() {
                if !buf.frozen[slot] {
                    out[i] = flows[i].cap.unwrap_or(Bandwidth::bps(fallback_cap));
                    buf.frozen[slot] = true;
                }
            }
            break;
        }
        level = level.max(0.0);

        let mut froze_any = false;
        for (slot, &i) in subset.iter().enumerate() {
            if buf.frozen[slot] {
                continue;
            }
            let f = &flows[i];
            let capped = f.cap.is_some_and(|c| c.as_bps() <= level * (1.0 + 1e-12));
            let bottlenecked = f
                .links
                .iter()
                .any(|&l| buf.remaining[l] / buf.active_count[l] as f64 <= level * (1.0 + 1e-12));
            if capped || bottlenecked {
                let r = if capped {
                    f.cap.expect("checked").as_bps().min(level)
                } else {
                    level
                };
                out[i] = Bandwidth::bps(r.max(0.0));
                buf.frozen[slot] = true;
                unfrozen -= 1;
                froze_any = true;
                for &l in &f.links {
                    buf.remaining[l] = (buf.remaining[l] - r).max(0.0);
                    buf.active_count[l] -= 1;
                }
            }
        }
        debug_assert!(froze_any, "progressive filling stalled");
        if !froze_any {
            for (slot, &i) in subset.iter().enumerate() {
                if !buf.frozen[slot] {
                    out[i] = Bandwidth::bps(level);
                    buf.frozen[slot] = true;
                    for &l in &flows[i].links {
                        buf.remaining[l] = (buf.remaining[l] - level).max(0.0);
                        buf.active_count[l] -= 1;
                    }
                }
            }
            break;
        }
    }
}

/// Two-class allocation: guaranteed flows water-fill first (among
/// themselves), then fair flows water-fill over the leftover capacity.
pub fn allocate_with_priority(flows: &[FlowDemand], capacities: &[Bandwidth]) -> Vec<Bandwidth> {
    let any_guaranteed = flows.iter().any(|f| f.guaranteed);
    if !any_guaranteed {
        return allocate(flows, capacities);
    }
    let hi: Vec<FlowDemand> = flows.iter().filter(|f| f.guaranteed).cloned().collect();
    let hi_rates = allocate(&hi, capacities);
    // Subtract the guaranteed load from every link.
    let mut leftover: Vec<f64> = capacities.iter().map(|c| c.as_bps()).collect();
    for (f, r) in hi.iter().zip(&hi_rates) {
        for &l in &f.links {
            leftover[l] = (leftover[l] - r.as_bps()).max(0.0);
        }
    }
    let lo: Vec<FlowDemand> = flows.iter().filter(|f| !f.guaranteed).cloned().collect();
    let lo_caps: Vec<Bandwidth> = leftover.into_iter().map(Bandwidth::bps).collect();
    let lo_rates = allocate(&lo, &lo_caps);
    // Stitch back in input order.
    let mut hi_it = hi_rates.into_iter();
    let mut lo_it = lo_rates.into_iter();
    flows
        .iter()
        .map(|f| {
            if f.guaranteed {
                hi_it.next().expect("one rate per guaranteed flow")
            } else {
                lo_it.next().expect("one rate per fair flow")
            }
        })
        .collect()
}

/// Compute max-min fair rates.
///
/// `capacities[l]` is the capacity of link `l`; `flows[f].links` index into
/// it. Returns one rate per flow, in order. Flows traversing no links
/// (never the case for real NIC-to-NIC routes) get an infinite share and
/// are clamped to their cap or to the largest link capacity.
pub fn allocate(flows: &[FlowDemand], capacities: &[Bandwidth]) -> Vec<Bandwidth> {
    let nf = flows.len();
    let nl = capacities.len();
    let mut rate = vec![Bandwidth::ZERO; nf];
    if nf == 0 {
        return rate;
    }

    let mut frozen = vec![false; nf];
    let mut remaining: Vec<f64> = capacities.iter().map(|c| c.as_bps()).collect();
    let mut active_count = vec![0usize; nl];
    for f in flows {
        for &l in &f.links {
            active_count[l] += 1;
        }
    }

    let fallback_cap = capacities
        .iter()
        .map(|c| c.as_bps())
        .fold(0.0_f64, f64::max);

    let mut unfrozen = nf;
    while unfrozen > 0 {
        // The tightest constraint this round: either a link's fair share or
        // some flow's cap.
        let mut level = f64::INFINITY;
        for l in 0..nl {
            if active_count[l] > 0 {
                level = level.min(remaining[l] / active_count[l] as f64);
            }
        }
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            if let Some(cap) = f.cap {
                level = level.min(cap.as_bps());
            }
        }
        if !level.is_finite() {
            // Only link-free flows remain: give them their cap / fallback.
            for (i, f) in flows.iter().enumerate() {
                if !frozen[i] {
                    rate[i] = f.cap.unwrap_or(Bandwidth::bps(fallback_cap));
                    frozen[i] = true;
                }
            }
            break;
        }
        level = level.max(0.0);

        // Freeze every flow bound by this level: capped flows whose cap
        // equals the level, and flows on links that the level saturates.
        let mut froze_any = false;
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            let capped = f.cap.is_some_and(|c| c.as_bps() <= level * (1.0 + 1e-12));
            let bottlenecked = f
                .links
                .iter()
                .any(|&l| remaining[l] / active_count[l] as f64 <= level * (1.0 + 1e-12));
            if capped || bottlenecked {
                let r = if capped {
                    f.cap.expect("checked").as_bps().min(level)
                } else {
                    level
                };
                rate[i] = Bandwidth::bps(r.max(0.0));
                frozen[i] = true;
                unfrozen -= 1;
                froze_any = true;
                for &l in &f.links {
                    remaining[l] = (remaining[l] - r).max(0.0);
                    active_count[l] -= 1;
                }
            }
        }
        debug_assert!(froze_any, "progressive filling stalled");
        if !froze_any {
            // Numerical corner: freeze everything at the level to terminate.
            for (i, f) in flows.iter().enumerate() {
                if !frozen[i] {
                    rate[i] = Bandwidth::bps(level);
                    frozen[i] = true;
                    for &l in &f.links {
                        remaining[l] = (remaining[l] - level).max(0.0);
                        active_count[l] -= 1;
                    }
                }
            }
            break;
        }
    }
    rate
}

/// Like [`check_invariants`] but aware of the two-class priority of
/// [`allocate_with_priority`]: guaranteed flows are checked against the
/// full capacities among themselves, fair flows against the residual after
/// the guaranteed load — mirroring how the allocation is computed.
#[cfg(test)]
pub(crate) fn check_invariants_with_priority(
    flows: &[FlowDemand],
    caps: &[Bandwidth],
    rates: &[Bandwidth],
) {
    let hi: Vec<FlowDemand> = flows.iter().filter(|f| f.guaranteed).cloned().collect();
    let hi_rates: Vec<Bandwidth> = flows
        .iter()
        .zip(rates)
        .filter(|(f, _)| f.guaranteed)
        .map(|(_, &r)| r)
        .collect();
    check_invariants(&hi, caps, &hi_rates);
    let mut leftover: Vec<f64> = caps.iter().map(|c| c.as_bps()).collect();
    for (f, r) in hi.iter().zip(&hi_rates) {
        for &l in &f.links {
            leftover[l] = (leftover[l] - r.as_bps()).max(0.0);
        }
    }
    let lo: Vec<FlowDemand> = flows.iter().filter(|f| !f.guaranteed).cloned().collect();
    let lo_rates: Vec<Bandwidth> = flows
        .iter()
        .zip(rates)
        .filter(|(f, _)| !f.guaranteed)
        .map(|(_, &r)| r)
        .collect();
    let lo_caps: Vec<Bandwidth> = leftover.into_iter().map(Bandwidth::bps).collect();
    check_invariants(&lo, &lo_caps, &lo_rates);
}

/// The max-min invariants the property tests check (feasibility, cap
/// respect, bottleneck justification) — reusable by other modules' tests.
#[cfg(test)]
pub(crate) fn check_invariants(flows: &[FlowDemand], caps: &[Bandwidth], rates: &[Bandwidth]) {
    let tol = 1e-6; // bps tolerance relative to multi-Gbps scales
                    // 1. feasibility
    for (l, cap) in caps.iter().enumerate() {
        let load: f64 = flows
            .iter()
            .zip(rates)
            .filter(|(f, _)| f.links.contains(&l))
            .map(|(_, r)| r.as_bps())
            .sum();
        assert!(
            load <= cap.as_bps() * (1.0 + tol) + 1.0,
            "link {l} overloaded: {load} > {}",
            cap.as_bps()
        );
    }
    // 2. caps
    for (f, r) in flows.iter().zip(rates) {
        if let Some(c) = f.cap {
            assert!(r.as_bps() <= c.as_bps() * (1.0 + tol) + 1.0);
        }
    }
    // 3. bottleneck justification
    for (i, f) in flows.iter().enumerate() {
        if f.cap
            .is_some_and(|c| (rates[i].as_bps() - c.as_bps()).abs() < 1.0)
        {
            continue; // at cap
        }
        if f.links.is_empty() {
            continue;
        }
        let justified = f.links.iter().any(|&l| {
            let load: f64 = flows
                .iter()
                .zip(rates)
                .filter(|(g, _)| g.links.contains(&l))
                .map(|(_, r)| r.as_bps())
                .sum();
            let saturated = load >= caps[l].as_bps() * (1.0 - 1e-6) - 1.0;
            let maximal = flows
                .iter()
                .zip(rates)
                .filter(|(g, _)| g.links.contains(&l))
                .all(|(_, r)| r.as_bps() <= rates[i].as_bps() * (1.0 + 1e-6) + 1.0);
            saturated && maximal
        });
        assert!(justified, "flow {i} is neither capped nor bottlenecked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gbps(x: f64) -> Bandwidth {
        Bandwidth::gbps(x)
    }

    fn demand(links: &[usize]) -> FlowDemand {
        FlowDemand::fair(links.to_vec(), None)
    }

    #[test]
    fn single_flow_gets_min_link() {
        let rates = allocate(&[demand(&[0, 1])], &[gbps(100.0), gbps(50.0)]);
        assert!((rates[0].as_gbps() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn two_flows_split_shared_link() {
        let rates = allocate(&[demand(&[0]), demand(&[0])], &[gbps(100.0)]);
        assert!((rates[0].as_gbps() - 50.0).abs() < 1e-9);
        assert!((rates[1].as_gbps() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn classic_three_flow_water_fill() {
        // Link 0 (10G) carries flows A and B; link 1 (8G) carries B and C.
        // Max-min: B bottlenecked at min(5, 4) = 4 on link 1, C gets 4,
        // then A fills link 0 to 6.
        let rates = allocate(
            &[demand(&[0]), demand(&[0, 1]), demand(&[1])],
            &[gbps(10.0), gbps(8.0)],
        );
        assert!((rates[1].as_gbps() - 4.0).abs() < 1e-9, "B {:?}", rates[1]);
        assert!((rates[2].as_gbps() - 4.0).abs() < 1e-9, "C {:?}", rates[2]);
        assert!((rates[0].as_gbps() - 6.0).abs() < 1e-9, "A {:?}", rates[0]);
    }

    #[test]
    fn caps_are_respected_and_released_capacity_shared() {
        // Two flows on a 100G link; one capped at 10G -> other gets 90G.
        let flows = [FlowDemand::fair(vec![0], Some(gbps(10.0))), demand(&[0])];
        let rates = allocate(&flows, &[gbps(100.0)]);
        assert!((rates[0].as_gbps() - 10.0).abs() < 1e-9);
        assert!((rates[1].as_gbps() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs() {
        assert!(allocate(&[], &[gbps(1.0)]).is_empty());
    }

    #[test]
    fn linkless_flow_gets_cap() {
        let flows = [FlowDemand::fair(vec![], Some(gbps(5.0)))];
        let rates = allocate(&flows, &[gbps(100.0)]);
        assert!((rates[0].as_gbps() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_flows_each_get_full_capacity() {
        let rates = allocate(&[demand(&[0]), demand(&[1])], &[gbps(40.0), gbps(25.0)]);
        assert!((rates[0].as_gbps() - 40.0).abs() < 1e-9);
        assert!((rates[1].as_gbps() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn guaranteed_flows_preempt_fair_flows() {
        // 100G link: a guaranteed 75G flow + one fair flow -> 75/25 split,
        // the Figure 7 background-traffic situation.
        let flows = [
            FlowDemand {
                links: vec![0],
                cap: Some(gbps(75.0)),
                guaranteed: true,
            },
            demand(&[0]),
        ];
        let rates = allocate_with_priority(&flows, &[gbps(100.0)]);
        assert!((rates[0].as_gbps() - 75.0).abs() < 1e-9);
        assert!((rates[1].as_gbps() - 25.0).abs() < 1e-9);
        // Without the guarantee the same flows split 50/50 (cap unmet).
        let fair = [FlowDemand::fair(vec![0], Some(gbps(75.0))), demand(&[0])];
        let rates = allocate_with_priority(&fair, &[gbps(100.0)]);
        assert!((rates[0].as_gbps() - 50.0).abs() < 1e-9);
        assert!((rates[1].as_gbps() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn two_guaranteed_flows_share_fairly_among_themselves() {
        let flows = [
            FlowDemand {
                links: vec![0],
                cap: Some(gbps(80.0)),
                guaranteed: true,
            },
            FlowDemand {
                links: vec![0],
                cap: Some(gbps(80.0)),
                guaranteed: true,
            },
            demand(&[0]),
        ];
        let rates = allocate_with_priority(&flows, &[gbps(100.0)]);
        assert!((rates[0].as_gbps() - 50.0).abs() < 1e-9);
        assert!((rates[1].as_gbps() - 50.0).abs() < 1e-9);
        assert!(rates[2].as_gbps() < 1e-9, "fair flow starved by guarantees");
    }

    #[test]
    fn invariants_on_known_cases() {
        let caps = [gbps(10.0), gbps(8.0)];
        let flows = [demand(&[0]), demand(&[0, 1]), demand(&[1])];
        let rates = allocate(&flows, &caps);
        check_invariants(&flows, &caps, &rates);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn arb_flows() -> impl Strategy<Value = (Vec<FlowDemand>, Vec<Bandwidth>)> {
            // up to 12 links of 1..400 gbps, up to 24 flows over 1..5 links
            (1usize..12, 1usize..24).prop_flat_map(|(nl, nf)| {
                let caps = proptest::collection::vec(1.0f64..400.0, nl)
                    .prop_map(|v| v.into_iter().map(Bandwidth::gbps).collect::<Vec<_>>());
                let flows = proptest::collection::vec(
                    (
                        proptest::collection::btree_set(0usize..nl, 1..=nl.min(5)),
                        proptest::option::of(1.0f64..200.0),
                    )
                        .prop_map(|(links, cap)| {
                            FlowDemand::fair(links.into_iter().collect(), cap.map(Bandwidth::gbps))
                        }),
                    nf,
                );
                (flows, caps)
            })
        }

        fn arb_flows_mixed() -> impl Strategy<Value = (Vec<FlowDemand>, Vec<Bandwidth>)> {
            // Like `arb_flows` but with a guaranteed class mixed in, to
            // exercise the two-pass priority path of the scratch solver.
            (1usize..12, 1usize..24).prop_flat_map(|(nl, nf)| {
                let caps = proptest::collection::vec(1.0f64..400.0, nl)
                    .prop_map(|v| v.into_iter().map(Bandwidth::gbps).collect::<Vec<_>>());
                let flows = proptest::collection::vec(
                    (
                        proptest::collection::btree_set(0usize..nl, 1..=nl.min(5)),
                        proptest::option::of(1.0f64..200.0),
                        any::<bool>(),
                    )
                        .prop_map(|(links, cap, guaranteed)| FlowDemand {
                            links: links.into_iter().collect(),
                            cap: cap.map(Bandwidth::gbps),
                            guaranteed,
                        }),
                    nf,
                );
                (flows, caps)
            })
        }

        proptest! {
            #[test]
            fn allocation_satisfies_maxmin_invariants((flows, caps) in arb_flows()) {
                let rates = allocate(&flows, &caps);
                prop_assert_eq!(rates.len(), flows.len());
                super::check_invariants(&flows, &caps, &rates);
            }

            #[test]
            fn allocation_is_deterministic((flows, caps) in arb_flows()) {
                let a = allocate(&flows, &caps);
                let b = allocate(&flows, &caps);
                for (x, y) in a.iter().zip(&b) {
                    prop_assert_eq!(x.as_bps(), y.as_bps());
                }
            }

            #[test]
            fn scratch_reuse_matches_oracle(
                cases in proptest::collection::vec(arb_flows_mixed(), 1..8)
            ) {
                // One scratch reused across a whole sequence of problems of
                // varying shape must reproduce the allocating oracle
                // bit-for-bit on every one.
                let mut scratch = SolverScratch::default();
                let mut out = Vec::new();
                for (flows, caps) in &cases {
                    let oracle = allocate_with_priority(flows, caps);
                    allocate_with_priority_into(flows, caps, &mut scratch, &mut out);
                    prop_assert_eq!(out.len(), oracle.len());
                    for (x, y) in out.iter().zip(&oracle) {
                        prop_assert_eq!(x.as_bps(), y.as_bps());
                    }
                }
            }
        }
    }
}
