//! Arena-indexed flow storage: dense slots behind sequential [`FlowId`]s.
//!
//! [`FlowId`]s stay globally unique and monotonically increasing — that is
//! what makes completion ordering, cross-run differential tests, and the
//! digest canonical — but the hot state no longer lives in a
//! `BTreeMap<FlowId, FlowState>`. Instead an id indexes an O(1) flat
//! translation table (`id_slot`) into a `Vec`-backed slot arena with a LIFO
//! free list. Each slot carries a **generation tag**, bumped whenever the
//! slot is freed *or* its flow is structurally edited (re-pinned), so any
//! cache keyed by `(slot, generation)` — notably the solver's remap cache —
//! can prove in O(1) that a slot still holds the exact flow it was built
//! for, even after crash/restart churn recycles the slot.
//!
//! The map-backed representation is kept as a switchable oracle
//! ([`FlowStore::set_map_backed`]); both representations allocate identical
//! ids (the caller owns the sequential counter) and iterate in identical
//! id order, so every observable — trace digests included — must be
//! byte-identical between them. CI flips the toggle and checks.

use std::collections::BTreeMap;

use crate::flow::FlowId;

/// Sentinel in the id→slot table: id is dead (or was never born).
const DEAD: u32 = u32::MAX;

/// Dense slot arena with a free list and per-slot generation tags.
#[derive(Debug)]
pub(crate) struct FlowArena<T> {
    /// Slot-indexed flow state (struct-of-arrays split point: the state
    /// itself stays one struct; the arrays are slots/gens).
    slots: Vec<Option<T>>,
    /// Per-slot generation, bumped on free and on structural edits.
    gens: Vec<u32>,
    /// Recycled slot indices, LIFO.
    free: Vec<u32>,
    /// `id.0 -> slot` translation; `DEAD` for finished/cancelled ids.
    /// Ids are sequential, so this is a flat vector, not a map.
    id_slot: Vec<u32>,
    /// Ids below this are all dead — bounds ordered scans under churn.
    floor: usize,
    len: usize,
}

impl<T> Default for FlowArena<T> {
    fn default() -> Self {
        FlowArena {
            slots: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            id_slot: Vec::new(),
            floor: 0,
            len: 0,
        }
    }
}

impl<T> FlowArena<T> {
    fn slot_of(&self, id: FlowId) -> Option<u32> {
        let s = *self.id_slot.get(id.0 as usize)?;
        (s != DEAD).then_some(s)
    }

    fn insert(&mut self, id: FlowId, value: T) -> Option<T> {
        let idx = id.0 as usize;
        if idx >= self.id_slot.len() {
            self.id_slot.resize(idx + 1, DEAD);
        }
        if let Some(slot) = self.slot_of(id) {
            // Replacing a live id in place keeps the slot and generation.
            return self.slots[slot as usize].replace(value);
        }
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(None);
                self.gens.push(0);
                (self.slots.len() - 1) as u32
            }
        };
        self.slots[slot as usize] = Some(value);
        self.id_slot[idx] = slot;
        self.len += 1;
        None
    }

    fn remove(&mut self, id: FlowId) -> Option<T> {
        let slot = self.slot_of(id)?;
        self.id_slot[id.0 as usize] = DEAD;
        let out = self.slots[slot as usize].take();
        debug_assert!(out.is_some(), "live id pointed at an empty slot");
        self.gens[slot as usize] = self.gens[slot as usize].wrapping_add(1);
        self.free.push(slot);
        self.len -= 1;
        // Advance the dead-prefix watermark (amortized O(1)): ordered
        // scans then start at the oldest live id, so long-lived churn does
        // not degrade iteration to O(total ids ever).
        while self.floor < self.id_slot.len() && self.id_slot[self.floor] == DEAD {
            self.floor += 1;
        }
        out
    }

    /// Iterate live ids in ascending order (dead prefix skipped via the
    /// watermark maintained by `remove`).
    fn for_each_ordered(&self, mut f: impl FnMut(FlowId, &T)) {
        for idx in self.floor..self.id_slot.len() {
            let slot = self.id_slot[idx];
            if slot != DEAD {
                let v = self.slots[slot as usize]
                    .as_ref()
                    .expect("live id pointed at an empty slot");
                f(FlowId(idx as u64), v);
            }
        }
    }
}

/// Flow storage with two byte-equivalent representations: the dense arena
/// (default) and the `BTreeMap` oracle it replaced.
#[derive(Debug)]
pub(crate) enum FlowStore<T> {
    Arena(FlowArena<T>),
    Map(BTreeMap<FlowId, T>),
}

impl<T> Default for FlowStore<T> {
    fn default() -> Self {
        FlowStore::Arena(FlowArena::default())
    }
}

impl<T> FlowStore<T> {
    /// Map-backed oracle storage (for differential tests / env toggles).
    pub(crate) fn map_backed() -> Self {
        FlowStore::Map(BTreeMap::new())
    }

    pub(crate) fn is_map_backed(&self) -> bool {
        matches!(self, FlowStore::Map(_))
    }

    /// Switch representation in place, preserving every live flow. Slot
    /// assignments after a round-trip differ (ids re-enter in id order),
    /// which is fine: slots are never observable, only ids are.
    pub(crate) fn set_map_backed(&mut self, map: bool) {
        if map == self.is_map_backed() {
            return;
        }
        match self {
            FlowStore::Arena(a) => {
                let mut ids = Vec::with_capacity(a.len);
                a.for_each_ordered(|id, _| ids.push(id));
                let mut drained: Vec<(FlowId, T)> = Vec::with_capacity(ids.len());
                for id in ids {
                    let v = a.remove(id).expect("id listed as live");
                    drained.push((id, v));
                }
                *self = FlowStore::Map(drained.into_iter().collect());
            }
            FlowStore::Map(m) => {
                let mut a = FlowArena::default();
                for (id, v) in std::mem::take(m) {
                    a.insert(id, v);
                }
                *self = FlowStore::Arena(a);
            }
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            FlowStore::Arena(a) => a.len,
            FlowStore::Map(m) => m.len(),
        }
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn contains(&self, id: FlowId) -> bool {
        match self {
            FlowStore::Arena(a) => a.slot_of(id).is_some(),
            FlowStore::Map(m) => m.contains_key(&id),
        }
    }

    pub(crate) fn get(&self, id: FlowId) -> Option<&T> {
        match self {
            FlowStore::Arena(a) => {
                let slot = a.slot_of(id)?;
                a.slots[slot as usize].as_ref()
            }
            FlowStore::Map(m) => m.get(&id),
        }
    }

    pub(crate) fn get_mut(&mut self, id: FlowId) -> Option<&mut T> {
        match self {
            FlowStore::Arena(a) => {
                let slot = a.slot_of(id)?;
                a.slots[slot as usize].as_mut()
            }
            FlowStore::Map(m) => m.get_mut(&id),
        }
    }

    pub(crate) fn insert(&mut self, id: FlowId, value: T) -> Option<T> {
        match self {
            FlowStore::Arena(a) => a.insert(id, value),
            FlowStore::Map(m) => m.insert(id, value),
        }
    }

    pub(crate) fn remove(&mut self, id: FlowId) -> Option<T> {
        match self {
            FlowStore::Arena(a) => a.remove(id),
            FlowStore::Map(m) => m.remove(&id),
        }
    }

    /// Visit every live flow in ascending id order — the canonical order
    /// for anything digest- or float-visible. Identical across both
    /// representations by construction.
    pub(crate) fn for_each_ordered(&self, mut f: impl FnMut(FlowId, &T)) {
        match self {
            FlowStore::Arena(a) => a.for_each_ordered(f),
            FlowStore::Map(m) => {
                for (id, v) in m.iter() {
                    f(*id, v);
                }
            }
        }
    }

    /// Live ids in ascending order, collected into `out`.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn ids_ordered(&self, out: &mut Vec<FlowId>) {
        out.clear();
        self.for_each_ordered(|id, _| out.push(id));
    }

    /// `(generation << 32) | slot` for a live id — an O(1) witness that a
    /// slot still holds the exact flow a cache entry was built against.
    /// `None` in map-backed mode (no slots exist), which forces caches to
    /// take their slow verification path: the oracle stays the oracle.
    pub(crate) fn stamp(&self, id: FlowId) -> Option<u64> {
        match self {
            FlowStore::Arena(a) => {
                let slot = a.slot_of(id)?;
                Some((u64::from(a.gens[slot as usize]) << 32) | u64::from(slot))
            }
            FlowStore::Map(_) => None,
        }
    }

    /// Bump a live flow's generation after a structural edit (re-pin):
    /// stamp-keyed caches must stop trusting their fast path for it.
    pub(crate) fn bump_generation(&mut self, id: FlowId) {
        if let FlowStore::Arena(a) = self {
            if let Some(slot) = a.slot_of(id) {
                a.gens[slot as usize] = a.gens[slot as usize].wrapping_add(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s: FlowStore<u32> = FlowStore::default();
        assert!(s.is_empty());
        s.insert(FlowId(0), 10);
        s.insert(FlowId(1), 11);
        s.insert(FlowId(2), 12);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(FlowId(1)), Some(&11));
        *s.get_mut(FlowId(1)).unwrap() = 21;
        assert_eq!(s.remove(FlowId(1)), Some(21));
        assert!(!s.contains(FlowId(1)));
        assert_eq!(s.get(FlowId(1)), None);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn slot_reuse_bumps_generation() {
        let mut s: FlowStore<u32> = FlowStore::default();
        s.insert(FlowId(0), 0);
        let stamp0 = s.stamp(FlowId(0)).unwrap();
        s.remove(FlowId(0));
        s.insert(FlowId(1), 1);
        let stamp1 = s.stamp(FlowId(1)).unwrap();
        // Same recycled slot, different generation.
        assert_eq!(stamp0 & 0xffff_ffff, stamp1 & 0xffff_ffff);
        assert_ne!(stamp0, stamp1);
        // Structural edit bumps too.
        s.bump_generation(FlowId(1));
        assert_ne!(s.stamp(FlowId(1)).unwrap(), stamp1);
    }

    #[test]
    fn ordered_iteration_matches_map_oracle() {
        let mut arena: FlowStore<u64> = FlowStore::default();
        let mut map: FlowStore<u64> = FlowStore::map_backed();
        let mut next = 0u64;
        // Deterministic churn: interleaved inserts and removes.
        for round in 0..50u64 {
            for _ in 0..3 {
                let id = FlowId(next);
                next += 1;
                arena.insert(id, id.0 * 7);
                map.insert(id, id.0 * 7);
            }
            let victim = FlowId((round * 13) % next);
            assert_eq!(arena.remove(victim), map.remove(victim));
        }
        let (mut a_ids, mut m_ids) = (Vec::new(), Vec::new());
        arena.ids_ordered(&mut a_ids);
        map.ids_ordered(&mut m_ids);
        assert_eq!(a_ids, m_ids);
        assert!(a_ids.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
        for id in a_ids {
            assert_eq!(arena.get(id), map.get(id));
        }
    }

    #[test]
    fn representation_switch_preserves_contents() {
        let mut s: FlowStore<u64> = FlowStore::default();
        for i in 0..10 {
            s.insert(FlowId(i), i + 100);
        }
        s.remove(FlowId(3));
        s.remove(FlowId(7));
        s.set_map_backed(true);
        assert!(s.is_map_backed());
        assert_eq!(s.len(), 8);
        assert_eq!(s.stamp(FlowId(4)), None, "oracle has no slots");
        s.set_map_backed(false);
        assert_eq!(s.len(), 8);
        assert_eq!(s.get(FlowId(4)), Some(&104));
        assert!(s.stamp(FlowId(4)).is_some());
        assert!(!s.contains(FlowId(3)));
    }
}
