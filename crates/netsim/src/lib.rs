//! # mccs-netsim — flow-level datacenter network simulator
//!
//! The transport substrate substituting for the paper's RDMA testbed. The
//! model matches the simulator the paper itself uses for its large-scale
//! evaluation (§6.5): flows share links with **per-flow max-min fairness**,
//! flows are routed either by ECMP hashing or by an explicitly pinned route
//! (MCCS's source-routing control), and the simulator advances in virtual
//! time, emitting exact completion events.
//!
//! ## Model
//!
//! A [`flow::FlowSpec`] names a source NIC, destination NIC, byte count
//! (or unbounded for background traffic), a routing choice and an optional
//! rate cap. [`network::Network`] resolves routes over an
//! [`mccs_topology::Topology`], recomputes the max-min rate allocation
//! whenever the active flow set changes ([`maxmin`]), and accrues per-flow
//! progress between changes. Pausing and resuming flows implements the
//! paper's time-window traffic scheduling (TS); re-pinning routes at
//! runtime implements dynamic flow assignment (FFA/PFA).
//!
//! ## Module map
//! * [`flow`] — flow descriptions, ids and completion records.
//! * [`maxmin`] — the pure water-filling rate allocator.
//! * [`network`] — the virtual-time flow lifecycle engine.
//! * [`fault`] — deterministic fault schedules (link/host/control faults).

pub(crate) mod arena;
pub mod fault;
pub mod flow;
pub mod maxmin;
pub mod network;

pub use fault::{ControlFault, FaultEvent, FaultPlan};
pub use flow::{FlowCompletion, FlowId, FlowSpec, RouteChoice};
pub use network::Network;
