//! Deterministic fault schedules over virtual time.
//!
//! A [`FaultPlan`] is a turmoil-style script: a sorted timeline of
//! [`FaultEvent`]s the harness replays at exact virtual instants, plus
//! per-message directives for the control ring ([`ControlFault`], keyed by
//! the message's send ordinal). Everything is data — no randomness lives
//! here, so a plan derived from a seeded RNG replays identically, and a
//! simulation with **no plan installed** performs no fault work at all.

use mccs_sim::Nanos;
use mccs_topology::{HostId, LinkId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One scripted fault (or repair) at a point in virtual time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// Take a link down: capacity drops to zero, flows crossing it freeze.
    LinkDown(LinkId),
    /// Bring a link back to full capacity.
    LinkUp(LinkId),
    /// Degrade a link to `milli`/1000 of its capacity (integer so event
    /// timelines stay `Eq`/hashable; 1000 = healthy).
    LinkDegrade {
        /// The degraded link.
        link: LinkId,
        /// Remaining capacity in thousandths of line rate.
        milli: u32,
    },
    /// Degrade several links at once to the same fraction — the correlated
    /// brownout signature of a shared optic bundle or a flapping switch
    /// ASIC, where one physical fault dims a whole group of logical links.
    CorrelatedDegrade {
        /// The degraded link group (shared so the event stays cheap to
        /// clone through the timeline).
        links: Arc<[LinkId]>,
        /// Remaining capacity in thousandths of line rate, applied to
        /// every link in the group.
        milli: u32,
    },
    /// Abort every in-flight flow currently crossing a link (the flows
    /// vanish from the fabric; their owners see a failure, not a stall).
    AbortFlowsOn(LinkId),
    /// Crash a host: its service engines freeze and every flow touching
    /// its NICs is killed.
    CrashHost(HostId),
    /// Warm-restart a crashed host: engines resume with state intact.
    RestartHost(HostId),
    /// Crash the central controller process: health monitoring and
    /// recovery stop running, and health events accumulate in the bounded
    /// push channel until a restart. The data plane keeps moving.
    CrashController,
    /// Restart the crashed controller: it rebuilds its working state from
    /// the last checkpoint and reconciles against the live fabric.
    RestartController,
}

/// What to do to one control-ring message, identified by send ordinal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ControlFault {
    /// The message is lost.
    Drop,
    /// The message is delivered late by this much.
    Delay(Nanos),
}

/// A deterministic, virtual-time fault schedule.
///
/// Build with [`FaultPlan::new`] + [`at`](FaultPlan::at) /
/// [`drop_control`](FaultPlan::drop_control) /
/// [`delay_control`](FaultPlan::delay_control); the harness consumes the
/// timeline in order via [`next_time`](FaultPlan::next_time) and
/// [`pop_due`](FaultPlan::pop_due).
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Time-sorted script (stable under equal times: insertion order).
    timeline: Vec<(Nanos, FaultEvent)>,
    /// Next unconsumed timeline entry.
    cursor: usize,
    /// Control-message directives by send ordinal (0-based, cluster-wide).
    control: BTreeMap<u64, ControlFault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing until populated).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at absolute virtual time `at`.
    pub fn at(mut self, at: Nanos, event: FaultEvent) -> Self {
        self.push_at(at, event);
        self
    }

    /// Schedule `event` at `at` on a plan that is already installed and
    /// partially consumed — the live-injection path of the chaos driver.
    /// `at` must not precede an event that already fired; injecting "at
    /// now" is always safe.
    pub fn push_at(&mut self, at: Nanos, event: FaultEvent) {
        // Stable insert keeps same-instant events in authoring order.
        let pos = self.timeline.partition_point(|(t, _)| *t <= at);
        assert!(
            pos >= self.cursor,
            "cannot schedule a fault at {at} before already-fired events"
        );
        self.timeline.insert(pos, (at, event));
    }

    /// Clamp every unfired event scripted strictly before `now` up to
    /// `now`, preserving authoring order, and return how many were
    /// clamped. Mid-run installs call this so a past-dated script fires
    /// once at install time instead of bursting a fictitious history
    /// (the events still fire — rejecting them would silently drop
    /// faults a test asked for — but their observed times are honest).
    pub fn clamp_before(&mut self, now: Nanos) -> usize {
        let mut clamped = 0;
        for (t, _) in self.timeline[self.cursor..].iter_mut() {
            if *t >= now {
                break;
            }
            *t = now;
            clamped += 1;
        }
        clamped
    }

    /// Schedule a correlated multi-link degrade at `at`: every link in
    /// `links` drops to `milli`/1000 of line rate in the same instant.
    pub fn degrade_group(self, at: Nanos, links: &[LinkId], milli: u32) -> Self {
        self.at(
            at,
            FaultEvent::CorrelatedDegrade {
                links: Arc::from(links),
                milli,
            },
        )
    }

    /// Drop the `ordinal`-th control message sent cluster-wide.
    pub fn drop_control(mut self, ordinal: u64) -> Self {
        self.control.insert(ordinal, ControlFault::Drop);
        self
    }

    /// Delay the `ordinal`-th control message by `by`.
    pub fn delay_control(mut self, ordinal: u64, by: Nanos) -> Self {
        self.control.insert(ordinal, ControlFault::Delay(by));
        self
    }

    /// Whether the scripted timeline is exhausted. Control directives are
    /// *conditional* — they fire only if the matching ordinal is ever
    /// sent — so they do not keep a plan "non-empty" forever; inspect
    /// them via [`pending_control`](Self::pending_control).
    pub fn is_empty(&self) -> bool {
        self.cursor >= self.timeline.len()
    }

    /// Unfired control directives (ordinals that were never sent, or not
    /// sent yet).
    pub fn pending_control(&self) -> usize {
        self.control.len()
    }

    /// Time of the next unconsumed scripted event.
    pub fn next_time(&self) -> Option<Nanos> {
        self.timeline.get(self.cursor).map(|(t, _)| *t)
    }

    /// Consume and return every scripted event due at or before `now`,
    /// in time (then authoring) order.
    pub fn pop_due(&mut self, now: Nanos) -> Vec<FaultEvent> {
        let mut out = Vec::new();
        while let Some((t, ev)) = self.timeline.get(self.cursor) {
            if *t > now {
                break;
            }
            out.push(ev.clone());
            self.cursor += 1;
        }
        out
    }

    /// The directive (if any) for the control message with this send
    /// ordinal. Each directive fires once.
    pub fn control_fault(&mut self, ordinal: u64) -> Option<ControlFault> {
        self.control.remove(&ordinal)
    }

    /// Peek at the full remaining timeline (tests, reporting).
    pub fn remaining(&self) -> &[(Nanos, FaultEvent)] {
        &self.timeline[self.cursor.min(self.timeline.len())..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_pops_in_time_then_authoring_order() {
        let mut plan = FaultPlan::new()
            .at(Nanos::from_millis(5), FaultEvent::LinkDown(LinkId(3)))
            .at(Nanos::from_millis(1), FaultEvent::LinkDown(LinkId(1)))
            .at(Nanos::from_millis(5), FaultEvent::LinkUp(LinkId(1)));
        assert_eq!(plan.next_time(), Some(Nanos::from_millis(1)));
        assert_eq!(
            plan.pop_due(Nanos::from_millis(1)),
            vec![FaultEvent::LinkDown(LinkId(1))]
        );
        assert_eq!(plan.next_time(), Some(Nanos::from_millis(5)));
        // same-instant events come out in authoring order
        assert_eq!(
            plan.pop_due(Nanos::from_millis(10)),
            vec![
                FaultEvent::LinkDown(LinkId(3)),
                FaultEvent::LinkUp(LinkId(1))
            ]
        );
        assert_eq!(plan.next_time(), None);
        assert!(plan.is_empty());
    }

    #[test]
    fn control_directives_fire_once() {
        let mut plan = FaultPlan::new()
            .drop_control(2)
            .delay_control(5, Nanos::from_micros(100));
        // Conditional directives never block timeline emptiness: a plan
        // whose ordinals are never sent must still read as drained.
        assert!(plan.is_empty());
        assert_eq!(plan.pending_control(), 2);
        assert_eq!(plan.control_fault(0), None);
        assert_eq!(plan.control_fault(2), Some(ControlFault::Drop));
        assert_eq!(plan.control_fault(2), None, "directives are one-shot");
        assert_eq!(
            plan.control_fault(5),
            Some(ControlFault::Delay(Nanos::from_micros(100)))
        );
        assert_eq!(plan.pending_control(), 0);
        assert!(plan.is_empty());
    }

    #[test]
    fn push_at_inserts_after_consumed_prefix() {
        let mut plan = FaultPlan::new()
            .at(Nanos::from_millis(1), FaultEvent::LinkDown(LinkId(1)))
            .at(Nanos::from_millis(9), FaultEvent::LinkUp(LinkId(1)));
        assert_eq!(plan.pop_due(Nanos::from_millis(1)).len(), 1);
        // Live injection at "now" lands between the consumed prefix and
        // the future script.
        plan.push_at(Nanos::from_millis(4), FaultEvent::LinkDown(LinkId(2)));
        assert_eq!(plan.next_time(), Some(Nanos::from_millis(4)));
        assert_eq!(
            plan.pop_due(Nanos::from_millis(4)),
            vec![FaultEvent::LinkDown(LinkId(2))]
        );
        assert_eq!(plan.next_time(), Some(Nanos::from_millis(9)));
    }

    #[test]
    #[should_panic(expected = "before already-fired events")]
    fn push_at_rejects_rewriting_history() {
        let mut plan = FaultPlan::new().at(Nanos::from_millis(5), FaultEvent::LinkDown(LinkId(1)));
        plan.pop_due(Nanos::from_millis(5));
        plan.push_at(Nanos::from_millis(2), FaultEvent::LinkUp(LinkId(1)));
    }

    #[test]
    fn clamp_before_raises_past_events_in_order() {
        let mut plan = FaultPlan::new()
            .at(Nanos::from_millis(1), FaultEvent::LinkDown(LinkId(1)))
            .at(Nanos::from_millis(2), FaultEvent::LinkDown(LinkId(2)))
            .at(Nanos::from_millis(8), FaultEvent::LinkUp(LinkId(1)));
        assert_eq!(plan.clamp_before(Nanos::from_millis(5)), 2);
        assert_eq!(plan.next_time(), Some(Nanos::from_millis(5)));
        // Authoring order survives the clamp; the future event is intact.
        assert_eq!(
            plan.pop_due(Nanos::from_millis(5)),
            vec![
                FaultEvent::LinkDown(LinkId(1)),
                FaultEvent::LinkDown(LinkId(2))
            ]
        );
        assert_eq!(plan.next_time(), Some(Nanos::from_millis(8)));
        assert_eq!(plan.clamp_before(Nanos::from_millis(6)), 0);
    }

    #[test]
    fn degrade_group_pops_as_one_event() {
        let links = [LinkId(4), LinkId(7)];
        let mut plan = FaultPlan::new().degrade_group(Nanos::from_millis(2), &links, 500);
        let due = plan.pop_due(Nanos::from_millis(2));
        assert_eq!(
            due,
            vec![FaultEvent::CorrelatedDegrade {
                links: Arc::from(&links[..]),
                milli: 500,
            }]
        );
        assert!(plan.is_empty());
    }

    #[test]
    fn empty_plan_is_inert() {
        let mut plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.next_time(), None);
        assert!(plan.pop_due(Nanos::from_secs(1)).is_empty());
    }
}
