//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small slice of the proptest API its tests use:
//! [`Strategy`] with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, `collection::{vec, btree_set}`, `option::of`,
//! `prop_oneof!`, `any::<T>()`, and the `proptest!` macro with
//! `ProptestConfig`.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its generated input and the
//!   per-case seed instead of a minimized counterexample.
//! * **Deterministic.** Case `i` of test `name` derives its RNG seed from
//!   `(name, i)`, so failures reproduce without a persistence file.

pub mod test_runner;

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Derive a second strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erase (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    (lo as i128 + rng.below(span.saturating_add(1)) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($S:ident . $idx:tt),+))*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies!((A.0)(A.0, B.1)(A.0, B.1, C.2)(A.0, B.1, C.2, D.3)(
        A.0, B.1, C.2, D.3, E.4
    )(A.0, B.1, C.2, D.3, E.4, F.5));

    /// Full-domain strategy returned by [`any`](crate::arbitrary::any).
    pub struct AnyStrategy<T>(pub(crate) core::marker::PhantomData<T>);

    macro_rules! any_ints {
        ($($t:ty),*) => {$(
            impl Strategy for AnyStrategy<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    any_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for AnyStrategy<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the full-domain strategy for a type.

    use crate::strategy::AnyStrategy;

    /// The whole domain of `T` (primitives only in this subset).
    pub fn any<T>() -> AnyStrategy<T> {
        AnyStrategy(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// Inclusive element-count bounds accepted by collection strategies
    /// (from an exact `usize`, `a..b`, or `a..=b`).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn draw(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// `Vec` strategy with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet` strategy: aims for a size in `size`, accepting fewer
    /// elements when the element domain collides too often.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.draw(rng);
            let mut set = BTreeSet::new();
            let mut tries = 0usize;
            while set.len() < target && tries < target.saturating_mul(20).max(64) {
                set.insert(self.element.generate(rng));
                tries += 1;
            }
            set
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `Some(value)` about half the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod prelude {
    //! Everything a `proptest!` test needs in scope.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert inside a property (panics like `assert!`; no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skip the current case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running [`ProptestConfig::cases`] random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(
            $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            let strategy = ($($strat,)+);
            runner.run_named(stringify!($name), &strategy, |value| {
                let ($($pat,)+) = value;
                $body
            });
        }
    )*};
}
