//! Deterministic case runner and RNG.

use crate::strategy::Strategy;

/// Runner knobs (only `cases` is honored by this subset).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate's default, overridable like proptest via env.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// SplitMix64 — tiny, seedable, and good enough for test-case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG whose stream is fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runs a strategy's cases against a property closure.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// A runner for `config`.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Run `property` over `config.cases` generated values. On panic the
    /// offending input and seed are printed, then the panic resumes (the
    /// surrounding `#[test]` fails).
    pub fn run_named<S>(&mut self, name: &str, strategy: &S, mut property: impl FnMut(S::Value))
    where
        S: Strategy,
        S::Value: std::fmt::Debug,
    {
        for case in 0..self.config.cases {
            let seed = fnv1a(name.as_bytes()) ^ (u64::from(case)).wrapping_mul(0x0100_0000_01B3);
            let mut rng = TestRng::new(seed);
            let value = strategy.generate(&mut rng);
            let rendered = format!("{value:?}");
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                property(value);
            }));
            if let Err(panic) = outcome {
                eprintln!(
                    "proptest {name}: case {case}/{} failed (seed {seed:#018x})\n  input: {rendered}",
                    self.config.cases
                );
                std::panic::resume_unwind(panic);
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01B3);
    }
    h
}
