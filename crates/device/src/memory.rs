//! Fabric-wide device memory: pointers, IPC handles, validation.
//!
//! The MCCS memory-management protocol (§4.1):
//! 1. the shim forwards an allocation request to the service;
//! 2. the service's frontend engine allocates on the target GPU and obtains
//!    an **inter-process memory handle**;
//! 3. the shim *opens* the handle to get the device pointer it hands back
//!    to the application;
//! 4. for collectives the shim passes `(handle, offset)` and the service
//!    validates the range against its allocation table before touching it.
//!
//! [`MemoryTable`] is the service-side registry implementing 2 and 4;
//! opening (3) simply reveals the pointer, mirroring `cudaIpcOpenMemHandle`.

use crate::alloc::{AllocError, GpuAllocator};
use mccs_sim::Bytes;
use mccs_topology::GpuId;
use std::collections::HashMap;

/// An inter-process shareable handle to one device allocation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MemHandle(pub u64);

/// A raw device pointer: GPU plus device address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DevicePtr {
    /// The GPU the memory lives on.
    pub gpu: GpuId,
    /// Device address.
    pub addr: u64,
}

#[derive(Clone, Copy, Debug)]
struct Registration {
    gpu: GpuId,
    addr: u64,
    size: u64,
}

/// Service-side registry of allocations across all GPUs of a host.
#[derive(Debug, Default)]
pub struct MemoryTable {
    handles: HashMap<MemHandle, Registration>,
    next_handle: u64,
}

/// Errors from handle-based memory operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemError {
    /// The handle was never issued or has been freed.
    UnknownHandle(MemHandle),
    /// `(offset, len)` does not fit inside the handle's allocation.
    RangeOutOfBounds {
        /// The offending handle.
        handle: MemHandle,
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Allocation size.
        size: u64,
    },
    /// The underlying allocator refused.
    Alloc(AllocError),
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::UnknownHandle(h) => write!(f, "unknown memory handle {h:?}"),
            MemError::RangeOutOfBounds {
                handle,
                offset,
                len,
                size,
            } => write!(
                f,
                "range [{offset}, {offset}+{len}) outside allocation {handle:?} of {size}B"
            ),
            MemError::Alloc(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MemError {}

impl MemoryTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate `size` bytes on `gpu` (whose allocator the caller owns) and
    /// register an IPC handle for the result.
    pub fn alloc(
        &mut self,
        gpu: GpuId,
        allocator: &mut GpuAllocator,
        size: Bytes,
    ) -> Result<MemHandle, MemError> {
        let addr = allocator.alloc(size).map_err(MemError::Alloc)?;
        let handle = MemHandle(self.next_handle);
        self.next_handle += 1;
        self.handles.insert(
            handle,
            Registration {
                gpu,
                addr,
                size: size.as_u64().div_ceil(crate::alloc::ALIGNMENT) * crate::alloc::ALIGNMENT,
            },
        );
        Ok(handle)
    }

    /// Open a handle: reveal the device pointer (`cudaIpcOpenMemHandle`).
    pub fn open(&self, handle: MemHandle) -> Result<DevicePtr, MemError> {
        let reg = self
            .handles
            .get(&handle)
            .ok_or(MemError::UnknownHandle(handle))?;
        Ok(DevicePtr {
            gpu: reg.gpu,
            addr: reg.addr,
        })
    }

    /// Free a handle's allocation.
    pub fn free(
        &mut self,
        handle: MemHandle,
        allocator: &mut GpuAllocator,
    ) -> Result<(), MemError> {
        let reg = self
            .handles
            .remove(&handle)
            .ok_or(MemError::UnknownHandle(handle))?;
        allocator.free(reg.addr);
        Ok(())
    }

    /// The GPU a handle's memory lives on.
    pub fn gpu_of(&self, handle: MemHandle) -> Result<GpuId, MemError> {
        Ok(self
            .handles
            .get(&handle)
            .ok_or(MemError::UnknownHandle(handle))?
            .gpu)
    }

    /// Validate that `[offset, offset+len)` lies inside the handle's
    /// allocation and return the absolute device pointer — the §4.1 check
    /// the service performs before every collective.
    pub fn validate(
        &self,
        handle: MemHandle,
        offset: u64,
        len: u64,
    ) -> Result<DevicePtr, MemError> {
        let reg = self
            .handles
            .get(&handle)
            .ok_or(MemError::UnknownHandle(handle))?;
        let fits = offset.checked_add(len).is_some_and(|end| end <= reg.size);
        if !fits {
            return Err(MemError::RangeOutOfBounds {
                handle,
                offset,
                len,
                size: reg.size,
            });
        }
        Ok(DevicePtr {
            gpu: reg.gpu,
            addr: reg.addr + offset,
        })
    }

    /// Number of live handles.
    pub fn live_count(&self) -> usize {
        self.handles.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (MemoryTable, GpuAllocator) {
        (MemoryTable::new(), GpuAllocator::new(Bytes::mib(64)))
    }

    #[test]
    fn alloc_open_free_protocol() {
        let (mut table, mut gpu_alloc) = setup();
        let h = table
            .alloc(GpuId(3), &mut gpu_alloc, Bytes::mib(1))
            .expect("fits");
        let ptr = table.open(h).expect("live");
        assert_eq!(ptr.gpu, GpuId(3));
        assert_eq!(table.gpu_of(h), Ok(GpuId(3)));
        assert_eq!(table.live_count(), 1);
        table.free(h, &mut gpu_alloc).expect("live");
        assert_eq!(table.open(h), Err(MemError::UnknownHandle(h)));
        assert_eq!(gpu_alloc.used(), 0);
    }

    #[test]
    fn validation_accepts_interior_ranges() {
        let (mut table, mut gpu_alloc) = setup();
        let h = table
            .alloc(GpuId(0), &mut gpu_alloc, Bytes::kib(64))
            .expect("fits");
        let base = table.open(h).expect("live").addr;
        let p = table.validate(h, 1024, 4096).expect("interior");
        assert_eq!(p.addr, base + 1024);
        table.validate(h, 0, 65536).expect("whole buffer");
    }

    #[test]
    fn validation_rejects_escapes() {
        let (mut table, mut gpu_alloc) = setup();
        let h = table
            .alloc(GpuId(0), &mut gpu_alloc, Bytes::kib(64))
            .expect("fits");
        assert!(matches!(
            table.validate(h, 0, 65537),
            Err(MemError::RangeOutOfBounds { .. })
        ));
        assert!(matches!(
            table.validate(h, 65536, 1),
            Err(MemError::RangeOutOfBounds { .. })
        ));
        // overflow attempt
        assert!(matches!(
            table.validate(h, u64::MAX, 2),
            Err(MemError::RangeOutOfBounds { .. })
        ));
    }

    #[test]
    fn double_free_is_an_error_not_a_panic() {
        let (mut table, mut gpu_alloc) = setup();
        let h = table
            .alloc(GpuId(0), &mut gpu_alloc, Bytes::kib(4))
            .expect("fits");
        table.free(h, &mut gpu_alloc).expect("first");
        assert_eq!(
            table.free(h, &mut gpu_alloc),
            Err(MemError::UnknownHandle(h))
        );
    }

    #[test]
    fn oom_surfaces_as_mem_error() {
        let (mut table, mut gpu_alloc) = setup();
        let e = table
            .alloc(GpuId(0), &mut gpu_alloc, Bytes::gib(1))
            .expect_err("too big");
        assert!(matches!(e, MemError::Alloc(AllocError::OutOfMemory { .. })));
        assert!(format!("{e}").contains("out of device memory"));
    }

    #[test]
    fn handles_are_unique_across_frees() {
        let (mut table, mut gpu_alloc) = setup();
        let h1 = table
            .alloc(GpuId(0), &mut gpu_alloc, Bytes::kib(4))
            .expect("fits");
        table.free(h1, &mut gpu_alloc).expect("live");
        let h2 = table
            .alloc(GpuId(0), &mut gpu_alloc, Bytes::kib(4))
            .expect("fits");
        assert_ne!(h1, h2, "handles must never be recycled");
    }
}
