//! # mccs-device — simulated GPU substrate
//!
//! Replaces CUDA for this reproduction (the repro gate: the paper's testbed
//! needs RTX 3090s). The *interfaces* mirror the CUDA primitives MCCS builds
//! on in §4.1 so the service logic is unchanged:
//!
//! * **Device memory + IPC handles** — the MCCS service allocates tenant
//!   buffers itself and shares them back through inter-process memory
//!   handles; it validates that every collective's buffer lies within a
//!   live allocation. [`alloc`] implements a per-GPU free-list allocator;
//!   [`memory`] implements fabric-wide handles, opening, and range
//!   validation.
//! * **Streams** — in-order operation queues per GPU ([`stream`]): compute
//!   kernels (duration-modeled), intra-host channel transfers
//!   (bytes/bandwidth-modeled), event records and event waits.
//! * **Events** — shareable synchronization points. Cross-process stream
//!   ordering (app stream ⇄ service stream) goes through events exactly as
//!   described in the paper, because streams cannot be shared between
//!   processes but events can.
//!
//! [`fabric::DeviceFabric`] owns every GPU and advances them in virtual
//! time, emitting completion notifications the engines poll.

pub mod alloc;
pub mod config;
pub mod fabric;
pub mod memory;
pub mod stream;

pub use alloc::{AllocError, GpuAllocator};
pub use config::DeviceConfig;
pub use fabric::{DeviceFabric, DeviceNotification};
pub use memory::{DevicePtr, MemHandle};
pub use stream::{EventId, StreamId, StreamOp};
