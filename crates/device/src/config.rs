//! Device performance model parameters.

use mccs_sim::{Bandwidth, Bytes, Nanos};

/// Cost-model knobs for the simulated GPUs.
///
/// Defaults approximate the paper's testbed (RTX 3090-class GPUs without
/// NVLink: intra-host GPU-to-GPU traffic rides host shared memory through
/// PCIe 4.0, far faster than the 50 Gbps NICs, so the network stays the
/// collective bottleneck exactly as on the real testbed).
#[derive(Clone, Debug)]
pub struct DeviceConfig {
    /// Device memory per GPU.
    pub memory_capacity: Bytes,
    /// Intra-host GPU-to-GPU channel bandwidth (host shared memory /
    /// PCIe-class; NVLink-class fabrics would set this much higher).
    pub intra_host_bandwidth: Bandwidth,
    /// Fixed overhead to launch any kernel (enqueue-to-start).
    pub kernel_launch_overhead: Nanos,
    /// Local reduction throughput for reduce kernels (bytes reduced per
    /// second); RTX 3090-class memory bandwidth keeps this far above NIC
    /// speed.
    pub reduce_bandwidth: Bandwidth,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            // 24 GB (RTX 3090).
            memory_capacity: Bytes::gib(24),
            // ~20 GB/s effective shared-memory channel.
            intra_host_bandwidth: Bandwidth::gibytes_per_sec(20.0),
            // ~5 us launch overhead.
            kernel_launch_overhead: Nanos::from_micros(5),
            // ~300 GB/s effective reduce throughput.
            reduce_bandwidth: Bandwidth::gibytes_per_sec(300.0),
        }
    }
}

impl DeviceConfig {
    /// Time for an intra-host channel transfer of `bytes`.
    pub fn intra_host_time(&self, bytes: Bytes) -> Nanos {
        self.kernel_launch_overhead + self.intra_host_bandwidth.transfer_time(bytes)
    }

    /// Time for a local reduction over `bytes`.
    pub fn reduce_time(&self, bytes: Bytes) -> Nanos {
        self.kernel_launch_overhead + self.reduce_bandwidth.transfer_time(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let c = DeviceConfig::default();
        assert_eq!(c.memory_capacity, Bytes::gib(24));
        assert!(c.intra_host_bandwidth.as_gbps() > 100.0);
    }

    #[test]
    fn cost_model_monotone() {
        let c = DeviceConfig::default();
        assert!(c.intra_host_time(Bytes::mib(64)) > c.intra_host_time(Bytes::mib(1)));
        assert!(c.reduce_time(Bytes::mib(64)) < c.intra_host_time(Bytes::mib(64)));
        // zero-byte ops still pay launch overhead
        assert_eq!(c.intra_host_time(Bytes::ZERO), c.kernel_launch_overhead);
    }
}
