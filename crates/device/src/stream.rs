//! Streams and events.
//!
//! A stream is an in-order queue of device operations, as in CUDA: an op
//! starts only when its predecessor finished. Events are the shareable
//! synchronization primitive: recording an event on stream A and waiting on
//! it from stream B orders B's subsequent ops after A's prior ops — across
//! process boundaries, which is exactly how the MCCS shim and service
//! synchronize (§4.1: streams cannot be shared between processes, events
//! can).
//!
//! Event semantics follow CUDA: a `wait` enqueued *before* any `record`
//! of the event completes immediately; otherwise it waits for the latest
//! `record` enqueued at the time the wait was issued.

use mccs_sim::{Bandwidth, Bytes, Nanos};
use mccs_topology::GpuId;
use std::collections::VecDeque;

/// Identifies a stream within a [`crate::DeviceFabric`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StreamId(pub u32);

/// Identifies a shareable event within a [`crate::DeviceFabric`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(pub u64);

/// An operation enqueued on a stream.
#[derive(Clone, Copy, Debug)]
pub enum StreamOp {
    /// A compute kernel with an explicit duration (profiled compute phases
    /// of the workload traces).
    Kernel {
        /// Execution time.
        duration: Nanos,
        /// Completion token reported when the op finishes (0 = silent).
        token: u64,
    },
    /// An intra-host channel transfer (shared-memory / NVLink-class).
    Transfer {
        /// Payload size.
        bytes: Bytes,
        /// Channel bandwidth.
        bandwidth: Bandwidth,
        /// Completion token reported when the op finishes (0 = silent).
        token: u64,
    },
    /// Record an event: completes instantly once reached, marking the event.
    RecordEvent(EventId),
    /// Block the stream until the event's captured generation is recorded.
    WaitEvent(EventId),
}

/// Internal form: waits capture the record generation they must see.
#[derive(Clone, Copy, Debug)]
pub(crate) enum QueuedOp {
    Timed {
        duration: Nanos,
        token: u64,
    },
    Record(EventId),
    WaitUntil {
        event: EventId,
        target_generation: u64,
    },
}

/// One event's bookkeeping.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct EventState {
    /// Record ops enqueued so far (generation counter).
    pub enqueued: u64,
    /// Record ops executed so far.
    pub completed: u64,
    /// When the latest record executed.
    pub last_at: Option<Nanos>,
}

impl EventState {
    /// Whether a wait captured at `target` is satisfied.
    pub fn satisfied(&self, target: u64) -> bool {
        self.completed >= target
    }
}

/// One in-order operation queue bound to a GPU.
#[derive(Debug)]
pub(crate) struct Stream {
    /// Kept for diagnostics and future per-GPU scheduling policies.
    #[allow(dead_code)]
    pub id: StreamId,
    pub gpu: GpuId,
    pub queue: VecDeque<QueuedOp>,
    /// The in-flight timed op, if any: (token, finish time).
    pub running: Option<(u64, Nanos)>,
}

impl Stream {
    pub fn new(id: StreamId, gpu: GpuId) -> Self {
        Stream {
            id,
            gpu,
            queue: VecDeque::new(),
            running: None,
        }
    }

    /// Whether the stream has no queued or running work.
    pub fn is_idle(&self) -> bool {
        self.running.is_none() && self.queue.is_empty()
    }

    /// Queued + running op count.
    pub fn depth(&self) -> usize {
        self.queue.len() + usize::from(self.running.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_generation_satisfaction() {
        let mut e = EventState::default();
        assert!(e.satisfied(0), "never-recorded events satisfy zero targets");
        assert!(!e.satisfied(1));
        e.enqueued = 1;
        assert!(!e.satisfied(1), "enqueued but not executed");
        e.completed = 1;
        assert!(e.satisfied(1));
        assert!(!e.satisfied(2));
    }

    #[test]
    fn stream_idleness() {
        let mut s = Stream::new(StreamId(0), GpuId(0));
        assert!(s.is_idle());
        s.queue.push_back(QueuedOp::Record(EventId(0)));
        assert!(!s.is_idle());
        assert_eq!(s.depth(), 1);
        s.queue.pop_front();
        s.running = Some((0, Nanos::from_micros(1)));
        assert_eq!(s.depth(), 1);
        assert!(!s.is_idle());
    }
}
