//! The device fabric: every GPU, stream and event in the cluster, advanced
//! together in virtual time.
//!
//! [`DeviceFabric`] is the single authority the engines talk to:
//! allocation (through [`crate::memory::MemoryTable`]), stream creation and
//! op submission, event queries, and time advancement. `advance_to`
//! completes timed ops in timestamp order and immediately re-dispatches
//! unblocked streams (an event record can unblock waits on other streams at
//! the same instant), so cross-stream dependency chains resolve without
//! time-stepping.

use crate::alloc::GpuAllocator;
use crate::config::DeviceConfig;
use crate::memory::{DevicePtr, MemError, MemHandle, MemoryTable};
use crate::stream::{EventId, EventState, QueuedOp, Stream, StreamId, StreamOp};
use mccs_sim::{Bytes, Nanos};
use mccs_topology::GpuId;

/// Completion notices drained from [`DeviceFabric::advance_to`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeviceNotification {
    /// A timed op carrying a non-zero token finished.
    OpDone {
        /// The stream it ran on.
        stream: StreamId,
        /// The token supplied at enqueue.
        token: u64,
        /// Completion time.
        at: Nanos,
    },
    /// An event-record op executed.
    EventRecorded {
        /// The recorded event.
        event: EventId,
        /// Record time.
        at: Nanos,
    },
}

/// All simulated GPUs of the cluster.
pub struct DeviceFabric {
    cfg: DeviceConfig,
    allocators: Vec<GpuAllocator>,
    memory: MemoryTable,
    streams: Vec<Stream>,
    events: Vec<EventState>,
    clock: Nanos,
    pending: Vec<DeviceNotification>,
    /// Streams blocked at an event wait, re-dispatched when the event is
    /// recorded (keeps dispatch O(affected streams), not O(all streams)).
    waiters: std::collections::HashMap<EventId, Vec<usize>>,
    /// Timed-op finish times, kept as a min-set for O(1)-ish next_time.
    running_finishes: std::collections::BTreeMap<(Nanos, usize), ()>,
    /// GPUs whose streams dispatched, completed, or unblocked since the
    /// last [`Self::take_touched_gpus`] — the wake-scheduler's per-GPU
    /// device-activity attribution.
    touched: std::collections::BTreeSet<u32>,
}

impl DeviceFabric {
    /// A fabric of `gpu_count` GPUs configured by `cfg`.
    pub fn new(gpu_count: usize, cfg: DeviceConfig) -> Self {
        let allocators = (0..gpu_count)
            .map(|_| GpuAllocator::new(cfg.memory_capacity))
            .collect();
        DeviceFabric {
            cfg,
            allocators,
            memory: MemoryTable::new(),
            streams: Vec::new(),
            events: Vec::new(),
            clock: Nanos::ZERO,
            pending: Vec::new(),
            waiters: std::collections::HashMap::new(),
            running_finishes: std::collections::BTreeMap::new(),
            touched: std::collections::BTreeSet::new(),
        }
    }

    /// The cost-model configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// Number of GPUs.
    pub fn gpu_count(&self) -> usize {
        self.allocators.len()
    }

    /// Time up to which all streams have been advanced.
    pub fn now(&self) -> Nanos {
        self.clock
    }

    // ---- memory -----------------------------------------------------------

    /// Allocate `size` bytes on `gpu`, returning an IPC-shareable handle
    /// (the frontend-engine path of §4.1).
    pub fn alloc(&mut self, gpu: GpuId, size: Bytes) -> Result<MemHandle, MemError> {
        let allocator = &mut self.allocators[gpu.index()];
        self.memory.alloc(gpu, allocator, size)
    }

    /// Free a handle's allocation.
    pub fn free(&mut self, handle: MemHandle) -> Result<(), MemError> {
        let gpu = self.memory.gpu_of(handle)?;
        let allocator = &mut self.allocators[gpu.index()];
        self.memory.free(handle, allocator)
    }

    /// Open a handle into a device pointer (shim side).
    pub fn open(&self, handle: MemHandle) -> Result<DevicePtr, MemError> {
        self.memory.open(handle)
    }

    /// Validate `(handle, offset, len)` and resolve the device pointer
    /// (service side, before every collective).
    pub fn validate(
        &self,
        handle: MemHandle,
        offset: u64,
        len: u64,
    ) -> Result<DevicePtr, MemError> {
        self.memory.validate(handle, offset, len)
    }

    /// Device memory in use on `gpu`.
    pub fn used_memory(&self, gpu: GpuId) -> Bytes {
        Bytes::new(self.allocators[gpu.index()].used())
    }

    // ---- streams & events ---------------------------------------------------

    /// Create a stream bound to `gpu`.
    pub fn create_stream(&mut self, gpu: GpuId) -> StreamId {
        assert!(gpu.index() < self.allocators.len(), "unknown GPU {gpu}");
        let id = StreamId(self.streams.len() as u32);
        self.streams.push(Stream::new(id, gpu));
        id
    }

    /// Create a shareable event.
    pub fn create_event(&mut self) -> EventId {
        let id = EventId(self.events.len() as u64);
        self.events.push(EventState::default());
        id
    }

    /// Enqueue an op. Zero-duration ops that are immediately runnable
    /// (records, satisfied waits) execute inline at the current clock.
    pub fn enqueue(&mut self, stream: StreamId, op: StreamOp) {
        let queued = match op {
            StreamOp::Kernel { duration, token } => QueuedOp::Timed { duration, token },
            StreamOp::Transfer {
                bytes,
                bandwidth,
                token,
            } => QueuedOp::Timed {
                duration: self.cfg.kernel_launch_overhead + bandwidth.transfer_time(bytes),
                token,
            },
            StreamOp::RecordEvent(ev) => {
                self.events[ev.0 as usize].enqueued += 1;
                QueuedOp::Record(ev)
            }
            StreamOp::WaitEvent(ev) => QueuedOp::WaitUntil {
                event: ev,
                target_generation: self.events[ev.0 as usize].enqueued,
            },
        };
        self.streams[stream.0 as usize].queue.push_back(queued);
        self.dispatch_streams(vec![stream.0 as usize]);
    }

    /// Convenience: enqueue an intra-host channel transfer using the
    /// configured shared-memory bandwidth.
    pub fn enqueue_intra_host_transfer(&mut self, stream: StreamId, bytes: Bytes, token: u64) {
        let bandwidth = self.cfg.intra_host_bandwidth;
        self.enqueue(
            stream,
            StreamOp::Transfer {
                bytes,
                bandwidth,
                token,
            },
        );
    }

    /// When (and whether) an event has been recorded.
    pub fn event_time(&self, event: EventId) -> Option<Nanos> {
        self.events[event.0 as usize].last_at
    }

    /// Whether a stream has drained completely.
    pub fn stream_idle(&self, stream: StreamId) -> bool {
        self.streams[stream.0 as usize].is_idle()
    }

    /// The GPU a stream is bound to.
    pub fn stream_gpu(&self, stream: StreamId) -> GpuId {
        self.streams[stream.0 as usize].gpu
    }

    /// Drain the set of GPUs with stream activity (ops dispatched,
    /// completed — silently or not — or unblocked) since the last drain.
    /// The caller turns these into per-GPU wake signals.
    pub fn take_touched_gpus(&mut self) -> std::collections::BTreeSet<u32> {
        std::mem::take(&mut self.touched)
    }

    /// Queued + running ops on a stream.
    pub fn stream_depth(&self, stream: StreamId) -> usize {
        self.streams[stream.0 as usize].depth()
    }

    // ---- time ---------------------------------------------------------------

    /// Earliest pending timed-op completion, if any.
    pub fn next_time(&self) -> Option<Nanos> {
        self.running_finishes.keys().next().map(|&(t, _)| t)
    }

    /// Advance to `target`, completing every timed op that finishes at or
    /// before it (in time order) and executing any ops those completions
    /// unblock. Returns notifications in occurrence order.
    pub fn advance_to(&mut self, target: Nanos) -> Vec<DeviceNotification> {
        assert!(target >= self.clock, "device time went backwards");
        loop {
            match self.next_time() {
                Some(t) if t <= target => {
                    self.clock = t;
                    // Complete every stream whose op finishes exactly at t.
                    let mut finished = Vec::new();
                    while let Some((&(ft, i), ())) =
                        self.running_finishes.iter().next().map(|(k, v)| (k, *v))
                    {
                        if ft > t {
                            break;
                        }
                        self.running_finishes.remove(&(ft, i));
                        let (token, _) =
                            self.streams[i].running.take().expect("indexed running op");
                        if token != 0 {
                            self.pending.push(DeviceNotification::OpDone {
                                stream: StreamId(i as u32),
                                token,
                                at: t,
                            });
                        }
                        finished.push(i);
                    }
                    self.dispatch_streams(finished);
                }
                _ => break,
            }
        }
        self.clock = target;
        std::mem::take(&mut self.pending)
    }

    /// Run the given streams' head ops as far as possible at the current
    /// clock: start timed ops, execute records (which re-dispatch streams
    /// blocked on the recorded event). Work-list driven so cost is
    /// proportional to affected streams only.
    fn dispatch_streams(&mut self, mut work: Vec<usize>) {
        while let Some(i) = work.pop() {
            self.touched.insert(self.streams[i].gpu.index() as u32);
            while self.streams[i].running.is_none() {
                let Some(&head) = self.streams[i].queue.front() else {
                    break;
                };
                match head {
                    QueuedOp::Timed { duration, token } => {
                        self.streams[i].queue.pop_front();
                        let finish = self.clock + duration;
                        self.streams[i].running = Some((token, finish));
                        self.running_finishes.insert((finish, i), ());
                        break; // the stream is now busy
                    }
                    QueuedOp::Record(ev) => {
                        self.streams[i].queue.pop_front();
                        let e = &mut self.events[ev.0 as usize];
                        e.completed += 1;
                        e.last_at = Some(self.clock);
                        self.pending.push(DeviceNotification::EventRecorded {
                            event: ev,
                            at: self.clock,
                        });
                        if let Some(ws) = self.waiters.remove(&ev) {
                            work.extend(ws);
                        }
                    }
                    QueuedOp::WaitUntil {
                        event,
                        target_generation,
                    } => {
                        if self.events[event.0 as usize].satisfied(target_generation) {
                            self.streams[i].queue.pop_front();
                        } else {
                            // blocked: wake us when the event is recorded
                            let ws = self.waiters.entry(event).or_default();
                            if !ws.contains(&i) {
                                ws.push(i);
                            }
                            break;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccs_sim::Bandwidth;

    fn fabric() -> DeviceFabric {
        DeviceFabric::new(2, DeviceConfig::default())
    }

    fn kernel(us: u64, token: u64) -> StreamOp {
        StreamOp::Kernel {
            duration: Nanos::from_micros(us),
            token,
        }
    }

    #[test]
    fn kernels_run_in_order_on_a_stream() {
        let mut f = fabric();
        let s = f.create_stream(GpuId(0));
        f.enqueue(s, kernel(10, 1));
        f.enqueue(s, kernel(5, 2));
        assert_eq!(f.next_time(), Some(Nanos::from_micros(10)));
        let notes = f.advance_to(Nanos::from_micros(20));
        assert_eq!(
            notes,
            vec![
                DeviceNotification::OpDone {
                    stream: s,
                    token: 1,
                    at: Nanos::from_micros(10)
                },
                DeviceNotification::OpDone {
                    stream: s,
                    token: 2,
                    at: Nanos::from_micros(15)
                },
            ]
        );
        assert!(f.stream_idle(s));
    }

    #[test]
    fn streams_run_concurrently() {
        let mut f = fabric();
        let s1 = f.create_stream(GpuId(0));
        let s2 = f.create_stream(GpuId(1));
        f.enqueue(s1, kernel(10, 1));
        f.enqueue(s2, kernel(10, 2));
        let notes = f.advance_to(Nanos::from_micros(10));
        assert_eq!(notes.len(), 2);
        // both finished at 10us — parallel, not serialized
        assert!(notes.iter().all(
            |n| matches!(n, DeviceNotification::OpDone { at, .. } if *at == Nanos::from_micros(10))
        ));
    }

    #[test]
    fn event_orders_across_streams() {
        let mut f = fabric();
        let producer = f.create_stream(GpuId(0));
        let consumer = f.create_stream(GpuId(1));
        let ev = f.create_event();
        // consumer waits first (wait enqueued BEFORE the record exists is
        // satisfied immediately per CUDA semantics — so use the ordering
        // record-then-wait that the shim actually performs).
        f.enqueue(producer, kernel(50, 0));
        f.enqueue(producer, StreamOp::RecordEvent(ev));
        f.enqueue(consumer, StreamOp::WaitEvent(ev));
        f.enqueue(consumer, kernel(10, 9));
        let notes = f.advance_to(Nanos::from_millis(1));
        // consumer's kernel starts only after producer's 50us kernel.
        assert!(notes.contains(&DeviceNotification::OpDone {
            stream: consumer,
            token: 9,
            at: Nanos::from_micros(60),
        }));
        assert_eq!(f.event_time(ev), Some(Nanos::from_micros(50)));
    }

    #[test]
    fn wait_on_unrecorded_event_is_noop() {
        let mut f = fabric();
        let s = f.create_stream(GpuId(0));
        let ev = f.create_event();
        f.enqueue(s, StreamOp::WaitEvent(ev));
        f.enqueue(s, kernel(5, 3));
        let notes = f.advance_to(Nanos::from_micros(5));
        assert_eq!(
            notes.len(),
            1,
            "wait on never-recorded event must not block"
        );
    }

    #[test]
    fn wait_captures_generation_at_enqueue() {
        let mut f = fabric();
        let a = f.create_stream(GpuId(0));
        let b = f.create_stream(GpuId(1));
        let ev = f.create_event();
        // Record enqueued on a busy stream; the wait enqueued AFTER that
        // record must see THAT record, not an earlier state.
        f.enqueue(a, kernel(100, 0));
        f.enqueue(a, StreamOp::RecordEvent(ev));
        f.enqueue(b, StreamOp::WaitEvent(ev));
        f.enqueue(b, kernel(1, 7));
        let notes = f.advance_to(Nanos::from_micros(50));
        assert!(notes.is_empty(), "b must still be blocked at 50us");
        let notes = f.advance_to(Nanos::from_micros(101));
        assert!(notes.iter().any(|n| matches!(
            n,
            DeviceNotification::OpDone { token: 7, at, .. } if *at == Nanos::from_micros(101)
        )));
    }

    #[test]
    fn transfer_duration_from_bandwidth() {
        let mut f = DeviceFabric::new(
            1,
            DeviceConfig {
                kernel_launch_overhead: Nanos::ZERO,
                ..DeviceConfig::default()
            },
        );
        let s = f.create_stream(GpuId(0));
        f.enqueue(
            s,
            StreamOp::Transfer {
                bytes: Bytes::mib(1),
                bandwidth: Bandwidth::gibytes_per_sec(1.0),
                token: 1,
            },
        );
        let notes = f.advance_to(Nanos::from_secs(1));
        let DeviceNotification::OpDone { at, .. } = notes[0] else {
            panic!("expected OpDone")
        };
        // 1 MiB at 1 GiB/s-ish (decimal 1e9*1.0737) — just check ~1.04ms.
        let ms = at.as_millis_f64();
        assert!((0.9..1.1).contains(&ms), "transfer took {ms}ms");
    }

    #[test]
    fn memory_roundtrip_through_fabric() {
        let mut f = fabric();
        let h = f.alloc(GpuId(1), Bytes::mib(4)).expect("fits");
        assert_eq!(f.used_memory(GpuId(1)), Bytes::mib(4));
        assert_eq!(f.used_memory(GpuId(0)), Bytes::ZERO);
        let p = f.open(h).expect("live");
        assert_eq!(p.gpu, GpuId(1));
        f.validate(h, 0, Bytes::mib(4).as_u64())
            .expect("whole range");
        assert!(f.validate(h, 1, Bytes::mib(4).as_u64()).is_err());
        f.free(h).expect("live");
        assert_eq!(f.used_memory(GpuId(1)), Bytes::ZERO);
    }

    #[test]
    fn silent_tokens_produce_no_notifications() {
        let mut f = fabric();
        let s = f.create_stream(GpuId(0));
        f.enqueue(s, kernel(10, 0));
        let notes = f.advance_to(Nanos::from_micros(10));
        assert!(notes.is_empty());
        assert!(f.stream_idle(s));
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn rejects_time_reversal() {
        let mut f = fabric();
        f.advance_to(Nanos::from_secs(1));
        f.advance_to(Nanos::from_millis(1));
    }

    #[test]
    fn chained_events_three_streams() {
        let mut f = DeviceFabric::new(3, DeviceConfig::default());
        let s: Vec<_> = (0..3).map(|i| f.create_stream(GpuId(i as u32))).collect();
        let e01 = f.create_event();
        let e12 = f.create_event();
        f.enqueue(s[0], kernel(10, 0));
        f.enqueue(s[0], StreamOp::RecordEvent(e01));
        f.enqueue(s[1], StreamOp::WaitEvent(e01));
        f.enqueue(s[1], kernel(10, 0));
        f.enqueue(s[1], StreamOp::RecordEvent(e12));
        f.enqueue(s[2], StreamOp::WaitEvent(e12));
        f.enqueue(s[2], kernel(10, 5));
        let notes = f.advance_to(Nanos::from_millis(1));
        assert!(notes.contains(&DeviceNotification::OpDone {
            stream: s[2],
            token: 5,
            at: Nanos::from_micros(30),
        }));
    }
}
