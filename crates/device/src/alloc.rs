//! Per-GPU device memory allocator.
//!
//! First-fit free-list allocator over a virtual address range. The MCCS
//! service owns tenant GPU buffers (the shim redirects `cudaMalloc` to the
//! service), so allocation correctness — no overlap, full reclamation,
//! alignment — is a service-side invariant; the property tests at the
//! bottom pin it down.

use mccs_sim::Bytes;
use std::collections::BTreeMap;
use std::fmt;

/// Allocation failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllocError {
    /// No contiguous free range large enough.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Total bytes free (possibly fragmented).
        free: u64,
    },
    /// Zero-sized allocation.
    ZeroSize,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory { requested, free } => {
                write!(
                    f,
                    "out of device memory: requested {requested}B, {free}B free"
                )
            }
            AllocError::ZeroSize => write!(f, "zero-sized allocation"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Allocation alignment: 256 B, matching CUDA's device-pointer guarantee.
pub const ALIGNMENT: u64 = 256;

/// A first-fit free-list allocator for one GPU's memory.
#[derive(Debug)]
pub struct GpuAllocator {
    capacity: u64,
    /// Free ranges: start address -> length. Non-adjacent (always merged).
    free: BTreeMap<u64, u64>,
    /// Live allocations: start address -> length.
    live: BTreeMap<u64, u64>,
}

impl GpuAllocator {
    /// An empty allocator over `capacity` bytes of device memory.
    pub fn new(capacity: Bytes) -> Self {
        let capacity = capacity.as_u64();
        let mut free = BTreeMap::new();
        if capacity > 0 {
            free.insert(0, capacity);
        }
        GpuAllocator {
            capacity,
            free,
            live: BTreeMap::new(),
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated (including alignment padding).
    pub fn used(&self) -> u64 {
        self.capacity - self.free_total()
    }

    /// Bytes currently free (possibly fragmented).
    pub fn free_total(&self) -> u64 {
        self.free.values().sum()
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Allocate `size` bytes; returns the device address. Sizes are rounded
    /// up to [`ALIGNMENT`].
    pub fn alloc(&mut self, size: Bytes) -> Result<u64, AllocError> {
        let size = size.as_u64();
        if size == 0 {
            return Err(AllocError::ZeroSize);
        }
        let size = size.div_ceil(ALIGNMENT) * ALIGNMENT;
        // First fit in address order (BTreeMap iterates ascending).
        let slot = self
            .free
            .iter()
            .find(|(_, &len)| len >= size)
            .map(|(&addr, &len)| (addr, len));
        let Some((addr, len)) = slot else {
            return Err(AllocError::OutOfMemory {
                requested: size,
                free: self.free_total(),
            });
        };
        self.free.remove(&addr);
        if len > size {
            self.free.insert(addr + size, len - size);
        }
        self.live.insert(addr, size);
        Ok(addr)
    }

    /// Free the allocation starting at `addr`.
    ///
    /// # Panics
    /// Panics on double free / unknown address — a service-side bug, never
    /// tenant-reachable (the shim only forwards handles the service issued).
    pub fn free(&mut self, addr: u64) {
        let size = self
            .live
            .remove(&addr)
            .unwrap_or_else(|| panic!("free of unallocated address {addr:#x}"));
        // Merge with the predecessor and/or successor free range.
        let mut start = addr;
        let mut len = size;
        if let Some((&prev_start, &prev_len)) = self.free.range(..addr).next_back() {
            if prev_start + prev_len == addr {
                self.free.remove(&prev_start);
                start = prev_start;
                len += prev_len;
            }
        }
        if let Some(&next_len) = self.free.get(&(addr + size)) {
            self.free.remove(&(addr + size));
            len += next_len;
        }
        self.free.insert(start, len);
    }

    /// The live allocation containing `[addr, addr+len)`, if any — the
    /// validity check the MCCS service runs on every collective's buffer
    /// (§4.1: "the service will check whether the data buffer the user
    /// passes is within a valid allocation").
    pub fn containing_alloc(&self, addr: u64, len: u64) -> Option<(u64, u64)> {
        let (&start, &size) = self.live.range(..=addr).next_back()?;
        let end = addr.checked_add(len)?;
        (end <= start + size).then_some((start, size))
    }

    /// Whether `[addr, addr+len)` lies entirely within one live allocation.
    pub fn is_valid_range(&self, addr: u64, len: u64) -> bool {
        self.containing_alloc(addr, len).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(cap_mib: u64) -> GpuAllocator {
        GpuAllocator::new(Bytes::mib(cap_mib))
    }

    #[test]
    fn alloc_and_free_roundtrip() {
        let mut a = alloc(16);
        let p = a.alloc(Bytes::kib(4)).expect("fits");
        assert_eq!(p % ALIGNMENT, 0);
        assert_eq!(a.used(), 4096);
        a.free(p);
        assert_eq!(a.used(), 0);
        assert_eq!(a.free_total(), Bytes::mib(16).as_u64());
    }

    #[test]
    fn sizes_round_up_to_alignment() {
        let mut a = alloc(1);
        a.alloc(Bytes::new(1)).expect("fits");
        assert_eq!(a.used(), ALIGNMENT);
    }

    #[test]
    fn oom_reports_free_bytes() {
        let mut a = alloc(1);
        let err = a.alloc(Bytes::mib(2)).expect_err("too big");
        assert_eq!(
            err,
            AllocError::OutOfMemory {
                requested: Bytes::mib(2).as_u64(),
                free: Bytes::mib(1).as_u64()
            }
        );
    }

    #[test]
    fn zero_size_rejected() {
        let mut a = alloc(1);
        assert_eq!(a.alloc(Bytes::ZERO), Err(AllocError::ZeroSize));
    }

    #[test]
    fn adjacent_frees_merge() {
        let mut a = alloc(1);
        let p1 = a.alloc(Bytes::kib(256)).expect("fits");
        let p2 = a.alloc(Bytes::kib(256)).expect("fits");
        let p3 = a.alloc(Bytes::kib(256)).expect("fits");
        a.free(p1);
        a.free(p3);
        a.free(p2); // merges with both sides
        assert_eq!(a.free_total(), Bytes::mib(1).as_u64());
        // and the whole capacity is again allocatable in one piece
        a.alloc(Bytes::mib(1)).expect("merged back to one range");
    }

    #[test]
    fn fragmentation_can_fail_despite_enough_total() {
        let mut a = alloc(1);
        let p1 = a.alloc(Bytes::kib(512)).expect("fits");
        let _p2 = a.alloc(Bytes::kib(256)).expect("fits");
        a.free(p1);
        // 768K total free, but the largest hole is 512K + trailing 256K,
        // which are separated by p2.
        assert_eq!(a.free_total(), Bytes::kib(768).as_u64());
        assert!(a.alloc(Bytes::kib(768)).is_err());
        a.alloc(Bytes::kib(512)).expect("first hole fits");
    }

    #[test]
    #[should_panic(expected = "free of unallocated")]
    fn double_free_panics() {
        let mut a = alloc(1);
        let p = a.alloc(Bytes::kib(4)).expect("fits");
        a.free(p);
        a.free(p);
    }

    #[test]
    fn range_validation() {
        let mut a = alloc(1);
        let p = a.alloc(Bytes::kib(64)).expect("fits");
        assert!(a.is_valid_range(p, 65536));
        assert!(a.is_valid_range(p + 1024, 1024));
        assert!(!a.is_valid_range(p, 65537), "past the end");
        assert!(!a.is_valid_range(p + 65536, 1), "starts past the end");
        a.free(p);
        assert!(!a.is_valid_range(p, 1), "freed");
    }

    #[test]
    fn validation_rejects_overflowing_range() {
        let mut a = alloc(1);
        let p = a.alloc(Bytes::kib(4)).expect("fits");
        assert!(!a.is_valid_range(p, u64::MAX));
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        #[derive(Clone, Debug)]
        enum Op {
            Alloc(u64),
            FreeNth(usize),
        }

        fn ops() -> impl Strategy<Value = Vec<Op>> {
            proptest::collection::vec(
                prop_oneof![
                    (1u64..512 * 1024).prop_map(Op::Alloc),
                    (0usize..64).prop_map(Op::FreeNth),
                ],
                1..200,
            )
        }

        proptest! {
            /// Under any alloc/free interleaving: allocations never
            /// overlap, accounting balances, and freeing everything
            /// restores one maximal free range.
            #[test]
            fn allocator_invariants(ops in ops()) {
                let mut a = GpuAllocator::new(Bytes::mib(8));
                let mut live: Vec<(u64, u64)> = Vec::new();
                for op in ops {
                    match op {
                        Op::Alloc(sz) => {
                            if let Ok(addr) = a.alloc(Bytes::new(sz)) {
                                let rounded = sz.div_ceil(ALIGNMENT) * ALIGNMENT;
                                // no overlap with any live allocation
                                for &(la, ls) in &live {
                                    prop_assert!(addr + rounded <= la || la + ls <= addr,
                                        "overlap: [{addr},{rounded}] vs [{la},{ls}]");
                                }
                                prop_assert_eq!(addr % ALIGNMENT, 0);
                                live.push((addr, rounded));
                            }
                        }
                        Op::FreeNth(i) => {
                            if !live.is_empty() {
                                let (addr, _) = live.swap_remove(i % live.len());
                                a.free(addr);
                            }
                        }
                    }
                    let live_sum: u64 = live.iter().map(|&(_, s)| s).sum();
                    prop_assert_eq!(a.used(), live_sum);
                    prop_assert_eq!(a.live_count(), live.len());
                }
                for (addr, _) in live.drain(..) {
                    a.free(addr);
                }
                prop_assert_eq!(a.used(), 0);
                // fully merged: one free range covering everything
                prop_assert!(a.alloc(Bytes::mib(8)).is_ok());
            }
        }
    }
}
