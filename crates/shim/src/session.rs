//! Request bookkeeping for one tenant rank.
//!
//! [`ShimSession`] correlates commands with completions, retries pushes
//! under queue back-pressure, and maintains the completion tables the
//! [`crate::ShimApi`] surface reads: allocated handles, communicator
//! events, launched sequence numbers, finished collectives, and errors.

use mccs_device::{EventId, MemHandle};
use mccs_ipc::{CommunicatorId, ErrorCode, ShimCommand, ShimCompletion};
use mccs_sim::Nanos;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A correlation id for an in-flight request.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ReqId(pub u64);

/// Result tables for one rank's outstanding and completed requests.
#[derive(Debug, Default)]
pub struct ShimSession {
    next_req: u64,
    /// Commands accepted by `submit` but not yet pushed (back-pressure).
    outbox: VecDeque<ShimCommand>,
    /// Completed allocations.
    allocs: BTreeMap<ReqId, MemHandle>,
    /// Completed frees.
    frees: BTreeSet<ReqId>,
    /// Completed communicator inits: the service-side communicator event.
    comms: BTreeMap<ReqId, (CommunicatorId, EventId)>,
    /// Completed communicator destroys.
    destroys: BTreeSet<ReqId>,
    /// Collective requests that have been sequenced by the service.
    launched: BTreeMap<ReqId, (CommunicatorId, u64)>,
    /// Collectives known complete.
    done: BTreeSet<(CommunicatorId, u64)>,
    /// Collectives the service cleanly failed after recovery was exhausted.
    failed: BTreeMap<(CommunicatorId, u64), (ErrorCode, String)>,
    /// Highest completed sequence per communicator.
    high_water: BTreeMap<CommunicatorId, u64>,
    /// Failed requests.
    errors: BTreeMap<ReqId, (ErrorCode, String)>,
    /// Collective request -> communicator (to resolve `done` before the
    /// launch ack arrives — impossible with FIFO queues, but kept robust).
    req_comm: BTreeMap<ReqId, CommunicatorId>,
    /// Completion-timestamp log for tracing-style assertions in tests.
    completion_times: Vec<(CommunicatorId, u64, Nanos)>,
}

impl ShimSession {
    /// A fresh session.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue a command for delivery; returns its correlation id.
    /// The `req` field of the command is overwritten with the fresh id.
    pub fn submit(&mut self, mut cmd: ShimCommand) -> ReqId {
        let req = ReqId(self.next_req);
        self.next_req += 1;
        set_req(&mut cmd, req.0);
        if let ShimCommand::Collective { coll, .. } = &cmd {
            self.req_comm.insert(req, coll.comm);
        }
        self.outbox.push_back(cmd);
        req
    }

    /// Whether back-pressure left commands queued but not yet pushed.
    /// (Wake plumbing: a blocked rank with unsent commands must re-poll
    /// when the service drains the command queue.)
    pub fn has_unsent(&self) -> bool {
        !self.outbox.is_empty()
    }

    /// Drain the outbox into `push` (a fallible push that returns the
    /// rejected command on back-pressure — the `LatencyQueue` contract) and
    /// ingest completions from `pop`. Returns `true` if anything moved.
    pub fn pump_with_backpressure(
        &mut self,
        now: Nanos,
        mut push: impl FnMut(ShimCommand) -> Result<(), ShimCommand>,
        mut pop: impl FnMut() -> Option<ShimCompletion>,
    ) -> bool {
        let mut moved = false;
        while let Some(cmd) = self.outbox.pop_front() {
            match push(cmd) {
                Ok(()) => moved = true,
                Err(rejected) => {
                    self.outbox.push_front(rejected);
                    break;
                }
            }
        }
        moved |= self.ingest_all(now, &mut pop);
        moved
    }

    fn ingest_all(&mut self, now: Nanos, pop: &mut impl FnMut() -> Option<ShimCompletion>) -> bool {
        let mut moved = false;
        while let Some(c) = pop() {
            self.ingest(now, c);
            moved = true;
        }
        moved
    }

    /// Record one completion.
    pub fn ingest(&mut self, now: Nanos, completion: ShimCompletion) {
        match completion {
            ShimCompletion::MemAlloc { req, handle } => {
                self.allocs.insert(ReqId(req), handle);
            }
            ShimCompletion::MemFree { req } => {
                self.frees.insert(ReqId(req));
            }
            ShimCompletion::CommInit {
                req,
                comm,
                comm_event,
            } => {
                self.comms.insert(ReqId(req), (comm, comm_event));
            }
            ShimCompletion::CommDestroy { req } => {
                self.destroys.insert(ReqId(req));
            }
            ShimCompletion::CollectiveLaunched { req, seq } => {
                let comm = *self
                    .req_comm
                    .get(&ReqId(req))
                    .expect("launch ack for unknown collective request");
                self.launched.insert(ReqId(req), (comm, seq));
            }
            ShimCompletion::CollectiveDone { comm, seq } => {
                self.done.insert((comm, seq));
                let hw = self.high_water.entry(comm).or_insert(seq);
                *hw = (*hw).max(seq);
                self.completion_times.push((comm, seq, now));
            }
            ShimCompletion::CollectiveFailed {
                comm,
                seq,
                code,
                message,
            } => {
                self.failed.insert((comm, seq), (code, message));
            }
            ShimCompletion::Error { req, code, message } => {
                self.errors.insert(ReqId(req), (code, message));
            }
        }
    }

    // ---- queries ----------------------------------------------------------

    /// The handle of a finished allocation request.
    pub fn alloc_result(&self, req: ReqId) -> Option<MemHandle> {
        self.allocs.get(&req).copied()
    }

    /// Whether a free finished.
    pub fn free_done(&self, req: ReqId) -> bool {
        self.frees.contains(&req)
    }

    /// The communicator event of a finished init.
    pub fn comm_result(&self, req: ReqId) -> Option<(CommunicatorId, EventId)> {
        self.comms.get(&req).copied()
    }

    /// Whether a destroy finished.
    pub fn destroy_done(&self, req: ReqId) -> bool {
        self.destroys.contains(&req)
    }

    /// The sequence number the service assigned to a collective request.
    pub fn launched_seq(&self, req: ReqId) -> Option<u64> {
        self.launched.get(&req).map(|&(_, s)| s)
    }

    /// Whether a collective request has fully completed.
    pub fn collective_done(&self, req: ReqId) -> bool {
        self.launched
            .get(&req)
            .is_some_and(|key| self.done.contains(key))
    }

    /// The failure verdict of a collective request the service cleanly
    /// aborted, if it did (NCCL-style error code plus cause).
    pub fn collective_failed(&self, req: ReqId) -> Option<(ErrorCode, &str)> {
        self.launched
            .get(&req)
            .and_then(|key| self.failed.get(key))
            .map(|(code, msg)| (*code, msg.as_str()))
    }

    /// Every collective the service failed on a communicator.
    pub fn failed_collectives(&self, comm: CommunicatorId) -> Vec<u64> {
        self.failed
            .keys()
            .filter(|(c, _)| *c == comm)
            .map(|&(_, seq)| seq)
            .collect()
    }

    /// Highest completed sequence on a communicator.
    pub fn high_water(&self, comm: CommunicatorId) -> Option<u64> {
        self.high_water.get(&comm).copied()
    }

    /// The error message of a failed request.
    pub fn error(&self, req: ReqId) -> Option<&str> {
        self.errors.get(&req).map(|(_, m)| m.as_str())
    }

    /// The NCCL-style error code of a failed request.
    pub fn error_code(&self, req: ReqId) -> Option<ErrorCode> {
        self.errors.get(&req).map(|&(code, _)| code)
    }

    /// Completion timestamps observed so far (comm, seq, time).
    pub fn completion_log(&self) -> &[(CommunicatorId, u64, Nanos)] {
        &self.completion_times
    }

    /// Commands still waiting to be pushed.
    pub fn outbox_depth(&self) -> usize {
        self.outbox.len()
    }
}

fn set_req(cmd: &mut ShimCommand, req: u64) {
    match cmd {
        ShimCommand::MemAlloc { req: r, .. }
        | ShimCommand::MemFree { req: r, .. }
        | ShimCommand::CommInit { req: r, .. }
        | ShimCommand::CommDestroy { req: r, .. }
        | ShimCommand::Collective { req: r, .. } => *r = req,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::test_port::LoopbackPort;
    use crate::port::ShimPort;
    use mccs_collectives::op::all_reduce_sum;
    use mccs_ipc::CollectiveRequest;
    use mccs_sim::Bytes;
    use mccs_topology::GpuId;

    fn pump(session: &mut ShimSession, port: &mut LoopbackPort) -> bool {
        let now = port.now;
        let mut moved = false;
        while let Some(c) = port.try_pop() {
            session.ingest(now, c);
            moved = true;
        }
        moved |= session.pump_with_backpressure(
            now,
            |cmd| {
                if port.try_push(cmd.clone()) {
                    Ok(())
                } else {
                    Err(cmd)
                }
            },
            || None,
        );
        while let Some(c) = port.try_pop() {
            session.ingest(now, c);
            moved = true;
        }
        moved
    }

    #[test]
    fn alloc_roundtrip() {
        let mut s = ShimSession::new();
        let mut p = LoopbackPort::new();
        let req = s.submit(ShimCommand::MemAlloc {
            req: 0,
            gpu: GpuId(0),
            size: Bytes::mib(1),
        });
        assert!(s.alloc_result(req).is_none());
        pump(&mut s, &mut p);
        assert!(s.alloc_result(req).is_some());
    }

    #[test]
    fn collective_lifecycle() {
        let mut s = ShimSession::new();
        let mut p = LoopbackPort::new();
        let comm = CommunicatorId(1);
        let req = s.submit(ShimCommand::Collective {
            req: 0,
            coll: CollectiveRequest {
                comm,
                op: all_reduce_sum(),
                size: Bytes::mib(4),
                send: (MemHandle(0), 0),
                recv: (MemHandle(1), 0),
                depends_on: None,
            },
        });
        assert!(!s.collective_done(req));
        pump(&mut s, &mut p);
        assert_eq!(s.launched_seq(req), Some(0));
        assert!(s.collective_done(req));
        assert_eq!(s.high_water(comm), Some(0));
        assert_eq!(s.completion_log().len(), 1);
    }

    #[test]
    fn backpressure_retries_in_order() {
        let mut s = ShimSession::new();
        let mut p = LoopbackPort::new();
        p.full = true;
        let _r1 = s.submit(ShimCommand::MemAlloc {
            req: 0,
            gpu: GpuId(0),
            size: Bytes::kib(1),
        });
        let _r2 = s.submit(ShimCommand::MemAlloc {
            req: 0,
            gpu: GpuId(0),
            size: Bytes::kib(2),
        });
        pump(&mut s, &mut p);
        assert_eq!(s.outbox_depth(), 2, "both held under backpressure");
        p.full = false;
        pump(&mut s, &mut p);
        assert_eq!(s.outbox_depth(), 0);
        assert_eq!(p.sent.len(), 2);
        // FIFO preserved
        let sizes: Vec<Bytes> = p
            .sent
            .iter()
            .map(|c| match c {
                ShimCommand::MemAlloc { size, .. } => *size,
                _ => panic!("unexpected"),
            })
            .collect();
        assert_eq!(sizes, vec![Bytes::kib(1), Bytes::kib(2)]);
    }

    #[test]
    fn errors_surface() {
        let mut s = ShimSession::new();
        let req = s.submit(ShimCommand::MemFree {
            req: 0,
            handle: MemHandle(9),
        });
        s.ingest(
            Nanos::ZERO,
            ShimCompletion::Error {
                req: req.0,
                code: ErrorCode::InvalidArgument,
                message: "unknown memory handle".into(),
            },
        );
        assert_eq!(s.error(req), Some("unknown memory handle"));
        assert_eq!(s.error_code(req), Some(ErrorCode::InvalidArgument));
        assert!(!s.free_done(req));
    }

    #[test]
    fn failed_collectives_surface() {
        let mut s = ShimSession::new();
        let mut p = LoopbackPort::new();
        p.auto_reply = false;
        let comm = CommunicatorId(3);
        let req = s.submit(ShimCommand::Collective {
            req: 0,
            coll: CollectiveRequest {
                comm,
                op: all_reduce_sum(),
                size: Bytes::mib(4),
                send: (MemHandle(0), 0),
                recv: (MemHandle(1), 0),
                depends_on: None,
            },
        });
        pump(&mut s, &mut p);
        s.ingest(
            Nanos::ZERO,
            ShimCompletion::CollectiveLaunched { req: req.0, seq: 4 },
        );
        s.ingest(
            Nanos::ZERO,
            ShimCompletion::CollectiveFailed {
                comm,
                seq: 4,
                code: ErrorCode::SystemError,
                message: "retries exhausted".into(),
            },
        );
        assert!(!s.collective_done(req));
        let (code, msg) = s.collective_failed(req).expect("failure recorded");
        assert_eq!(code, ErrorCode::SystemError);
        assert_eq!(msg, "retries exhausted");
        assert_eq!(s.failed_collectives(comm), vec![4]);
    }

    #[test]
    fn req_ids_are_unique_and_rewritten() {
        let mut s = ShimSession::new();
        let a = s.submit(ShimCommand::MemFree {
            req: 999,
            handle: MemHandle(0),
        });
        let b = s.submit(ShimCommand::MemFree {
            req: 999,
            handle: MemHandle(1),
        });
        assert_ne!(a, b);
        assert_eq!(a, ReqId(0));
        assert_eq!(b, ReqId(1));
    }
}
