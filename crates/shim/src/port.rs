//! The tenant process's window onto its host.
//!
//! A tenant process can: talk to its command/completion queues, drive its
//! *own* CUDA streams and events, open memory handles the service issued,
//! and read the clock. It explicitly cannot: see the topology, other
//! tenants, or the service's internals — the isolation boundary the paper
//! builds MCCS around.

use mccs_device::{DevicePtr, EventId, MemHandle, StreamId};
use mccs_ipc::{ShimCommand, ShimCompletion};
use mccs_sim::{Nanos, Rng};

/// Host facilities available to one tenant rank process. Implemented by
/// the simulation harness in `mccs-core`.
pub trait ShimPort {
    /// Current virtual time.
    fn now(&self) -> Nanos;

    /// Push a command toward the service; `false` means the queue is full
    /// (retry on a later poll).
    fn try_push(&mut self, cmd: ShimCommand) -> bool;

    /// Pop the next visible completion, if any.
    fn try_pop(&mut self) -> Option<ShimCompletion>;

    /// Open an IPC memory handle into a device pointer
    /// (`cudaIpcOpenMemHandle`). `None` for unknown/freed handles.
    fn open_handle(&self, handle: MemHandle) -> Option<DevicePtr>;

    /// This rank's default compute stream.
    fn app_stream(&self) -> StreamId;

    /// Create an event this process may record/wait on and share.
    fn create_event(&mut self) -> EventId;

    /// Enqueue a compute kernel of `duration` on this rank's stream; the
    /// completion is observable via [`ShimPort::stream_idle`].
    fn enqueue_kernel(&mut self, stream: StreamId, duration: Nanos);

    /// Enqueue an event record on a stream.
    fn enqueue_record(&mut self, stream: StreamId, event: EventId);

    /// Enqueue an event wait on a stream.
    fn enqueue_wait(&mut self, stream: StreamId, event: EventId);

    /// Whether a stream has drained.
    fn stream_idle(&self, stream: StreamId) -> bool;

    /// When (and whether) an event was recorded.
    fn event_time(&self, event: EventId) -> Option<Nanos>;

    /// Tenant-local randomness (deterministic per rank).
    fn rng(&mut self) -> &mut Rng;

    /// Ask the host to re-poll this process at (or after) `at` — how a
    /// real process would arm a timer before sleeping.
    fn schedule_wake(&mut self, at: Nanos);
}

#[cfg(test)]
pub(crate) mod test_port {
    //! An in-memory `ShimPort` with a scriptable service side, used by the
    //! session/api/program unit tests without pulling in the full service.

    use super::*;
    use mccs_sim::Bytes;
    use std::collections::VecDeque;

    /// Loopback port: commands are answered by a tiny fake service.
    pub struct LoopbackPort {
        pub now: Nanos,
        pub sent: Vec<ShimCommand>,
        pub inbox: VecDeque<ShimCompletion>,
        pub full: bool,
        pub rng: Rng,
        pub auto_reply: bool,
        next_handle: u64,
        next_event: u64,
        next_seq: u64,
        stream_busy_until: Nanos,
    }

    impl LoopbackPort {
        pub fn new() -> Self {
            LoopbackPort {
                now: Nanos::ZERO,
                sent: Vec::new(),
                inbox: VecDeque::new(),
                full: false,
                rng: Rng::seed_from(7),
                auto_reply: true,
                next_handle: 100,
                next_event: 50,
                next_seq: 0,
                stream_busy_until: Nanos::ZERO,
            }
        }

        fn reply(&mut self, cmd: &ShimCommand) {
            match *cmd {
                ShimCommand::MemAlloc { req, size, .. } => {
                    assert!(size > Bytes::ZERO);
                    let h = MemHandle(self.next_handle);
                    self.next_handle += 1;
                    self.inbox
                        .push_back(ShimCompletion::MemAlloc { req, handle: h });
                }
                ShimCommand::MemFree { req, .. } => {
                    self.inbox.push_back(ShimCompletion::MemFree { req });
                }
                ShimCommand::CommInit { req, comm, .. } => {
                    let ev = EventId(self.next_event);
                    self.next_event += 1;
                    self.inbox.push_back(ShimCompletion::CommInit {
                        req,
                        comm,
                        comm_event: ev,
                    });
                }
                ShimCommand::CommDestroy { req, .. } => {
                    self.inbox.push_back(ShimCompletion::CommDestroy { req });
                }
                ShimCommand::Collective { req, coll } => {
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    self.inbox
                        .push_back(ShimCompletion::CollectiveLaunched { req, seq });
                    self.inbox.push_back(ShimCompletion::CollectiveDone {
                        comm: coll.comm,
                        seq,
                    });
                }
            }
        }
    }

    impl ShimPort for LoopbackPort {
        fn now(&self) -> Nanos {
            self.now
        }
        fn try_push(&mut self, cmd: ShimCommand) -> bool {
            if self.full {
                return false;
            }
            if self.auto_reply {
                self.reply(&cmd);
            }
            self.sent.push(cmd);
            true
        }
        fn try_pop(&mut self) -> Option<ShimCompletion> {
            self.inbox.pop_front()
        }
        fn open_handle(&self, handle: MemHandle) -> Option<DevicePtr> {
            Some(DevicePtr {
                gpu: mccs_topology::GpuId(0),
                addr: handle.0 * 4096,
            })
        }
        fn app_stream(&self) -> StreamId {
            StreamId(0)
        }
        fn create_event(&mut self) -> EventId {
            let ev = EventId(self.next_event);
            self.next_event += 1;
            ev
        }
        fn enqueue_kernel(&mut self, _stream: StreamId, duration: Nanos) {
            let start = self.now.max(self.stream_busy_until);
            self.stream_busy_until = start + duration;
        }
        fn enqueue_record(&mut self, _stream: StreamId, _event: EventId) {}
        fn enqueue_wait(&mut self, _stream: StreamId, _event: EventId) {}
        fn stream_idle(&self, _stream: StreamId) -> bool {
            self.now >= self.stream_busy_until
        }
        fn event_time(&self, _event: EventId) -> Option<Nanos> {
            Some(self.now)
        }
        fn rng(&mut self) -> &mut Rng {
            &mut self.rng
        }
        fn schedule_wake(&mut self, _at: Nanos) {}
    }
}
