//! The NCCL-shaped tenant API.
//!
//! [`ShimApi`] is what application code holds while it runs: a borrow of
//! the rank's [`ShimSession`] and its [`ShimPort`]. Calls mirror NCCL —
//! `comm_init_rank`, `all_reduce`, `all_gather`, ... — but are
//! **non-blocking**: each returns a [`ReqId`] whose completion the program
//! polls. Synchronization with compute uses device events exactly as in
//! the paper's §4.1: `collective_with_dependency` records an event on the
//! app stream for the service to wait on, and `wait_collective_on_stream`
//! enqueues a wait on the communicator's service-side event.

use crate::port::ShimPort;
use crate::session::{ReqId, ShimSession};
use mccs_collectives::{CollectiveOp, ReduceKind};
use mccs_device::{EventId, MemHandle, StreamId};
use mccs_ipc::{CollectiveRequest, CommunicatorId, ErrorCode, ShimCommand};
use mccs_sim::{Bytes, Nanos};
use mccs_topology::GpuId;

/// Borrowed API surface handed to [`crate::AppProgram::poll`].
pub struct ShimApi<'a> {
    session: &'a mut ShimSession,
    port: &'a mut dyn ShimPort,
    gpu: GpuId,
}

impl<'a> ShimApi<'a> {
    /// Assemble the API from its parts (called by the harness).
    pub fn new(session: &'a mut ShimSession, port: &'a mut dyn ShimPort, gpu: GpuId) -> Self {
        ShimApi { session, port, gpu }
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.port.now()
    }

    /// The GPU this rank runs on (assigned by the provider; the tenant
    /// knows its own GPU, not the cluster layout).
    pub fn gpu(&self) -> GpuId {
        self.gpu
    }

    /// Move queued commands/completions. Call once per poll.
    pub fn pump(&mut self) -> bool {
        let now = self.port.now();
        let mut moved = self.drain_completions(now);
        let port = &mut *self.port;
        moved |= self.session.pump_with_backpressure(
            now,
            |cmd| {
                if port.try_push(cmd.clone()) {
                    Ok(())
                } else {
                    Err(cmd)
                }
            },
            || None,
        );
        // Completions may have landed in response to the pushes.
        moved |= self.drain_completions(now);
        moved
    }

    fn drain_completions(&mut self, now: Nanos) -> bool {
        let mut moved = false;
        while let Some(c) = self.port.try_pop() {
            self.session.ingest(now, c);
            moved = true;
        }
        moved
    }

    // ---- memory ------------------------------------------------------------

    /// Request a device allocation on this rank's GPU (redirected to the
    /// service per §4.1).
    pub fn alloc(&mut self, size: Bytes) -> ReqId {
        let gpu = self.gpu;
        self.session
            .submit(ShimCommand::MemAlloc { req: 0, gpu, size })
    }

    /// Poll an allocation.
    pub fn alloc_result(&self, req: ReqId) -> Option<MemHandle> {
        self.session.alloc_result(req)
    }

    /// Request a free.
    pub fn free(&mut self, handle: MemHandle) -> ReqId {
        self.session.submit(ShimCommand::MemFree { req: 0, handle })
    }

    /// Poll a free.
    pub fn free_done(&self, req: ReqId) -> bool {
        self.session.free_done(req)
    }

    // ---- communicators -------------------------------------------------------

    /// Register this rank in a communicator (cf. `ncclCommInitRank`).
    /// `world` is the user-assigned GPU-per-rank list — exactly the
    /// information whose ordering NCCL would bake into its ring.
    pub fn comm_init_rank(
        &mut self,
        comm: CommunicatorId,
        world: Vec<GpuId>,
        rank: usize,
    ) -> ReqId {
        assert!(rank < world.len(), "rank outside world");
        assert_eq!(world[rank], self.gpu, "rank's GPU mismatch");
        self.session.submit(ShimCommand::CommInit {
            req: 0,
            comm,
            world,
            rank,
        })
    }

    /// Poll a communicator init: the communicator's service-side event.
    pub fn comm_result(&self, req: ReqId) -> Option<(CommunicatorId, EventId)> {
        self.session.comm_result(req)
    }

    /// Tear down this rank of a communicator.
    pub fn comm_destroy(&mut self, comm: CommunicatorId) -> ReqId {
        self.session
            .submit(ShimCommand::CommDestroy { req: 0, comm })
    }

    /// Poll a destroy.
    pub fn destroy_done(&self, req: ReqId) -> bool {
        self.session.destroy_done(req)
    }

    // ---- collectives -----------------------------------------------------------

    /// Issue an AllReduce (cf. `ncclAllReduce`).
    pub fn all_reduce(
        &mut self,
        comm: CommunicatorId,
        size: Bytes,
        send: (MemHandle, u64),
        recv: (MemHandle, u64),
    ) -> ReqId {
        self.collective(
            comm,
            CollectiveOp::AllReduce(ReduceKind::Sum),
            size,
            send,
            recv,
            None,
        )
    }

    /// Issue an AllGather (cf. `ncclAllGather`). `size` is the output
    /// buffer size (all ranks' chunks concatenated).
    pub fn all_gather(
        &mut self,
        comm: CommunicatorId,
        size: Bytes,
        send: (MemHandle, u64),
        recv: (MemHandle, u64),
    ) -> ReqId {
        self.collective(comm, CollectiveOp::AllGather, size, send, recv, None)
    }

    /// Issue any collective, optionally dependent on `depends_on` — an
    /// event this rank records on its compute stream so the service only
    /// reads the send buffer after the producing kernel finishes.
    pub fn collective(
        &mut self,
        comm: CommunicatorId,
        op: CollectiveOp,
        size: Bytes,
        send: (MemHandle, u64),
        recv: (MemHandle, u64),
        depends_on: Option<EventId>,
    ) -> ReqId {
        self.session.submit(ShimCommand::Collective {
            req: 0,
            coll: CollectiveRequest {
                comm,
                op,
                size,
                send,
                recv,
                depends_on,
            },
        })
    }

    /// Issue a collective that depends on all work previously enqueued on
    /// `stream`: records a fresh event on the stream and passes it along —
    /// the full §4.1 synchronization pattern in one call.
    #[allow(clippy::too_many_arguments)]
    pub fn collective_after_stream(
        &mut self,
        comm: CommunicatorId,
        op: CollectiveOp,
        size: Bytes,
        send: (MemHandle, u64),
        recv: (MemHandle, u64),
        stream: StreamId,
    ) -> ReqId {
        let ev = self.port.create_event();
        self.port.enqueue_record(stream, ev);
        self.collective(comm, op, size, send, recv, Some(ev))
    }

    /// Whether a collective request has fully completed.
    pub fn collective_done(&self, req: ReqId) -> bool {
        self.session.collective_done(req)
    }

    /// The failure verdict (code + cause) of a collective the service
    /// cleanly aborted after recovery was exhausted, if it did.
    pub fn collective_failed(&self, req: ReqId) -> Option<(ErrorCode, &str)> {
        self.session.collective_failed(req)
    }

    /// The service-assigned sequence number of a collective.
    pub fn launched_seq(&self, req: ReqId) -> Option<u64> {
        self.session.launched_seq(req)
    }

    /// Highest completed sequence number on a communicator.
    pub fn high_water(&self, comm: CommunicatorId) -> Option<u64> {
        self.session.high_water(comm)
    }

    /// The error message of a failed request, if any.
    pub fn error(&self, req: ReqId) -> Option<&str> {
        self.session.error(req)
    }

    /// The NCCL-style error code of a failed request, if any.
    pub fn error_code(&self, req: ReqId) -> Option<ErrorCode> {
        self.session.error_code(req)
    }

    // ---- device (tenant-private compute) -----------------------------------------

    /// This rank's default compute stream.
    pub fn app_stream(&self) -> StreamId {
        self.port.app_stream()
    }

    /// Enqueue a compute kernel on the app stream.
    pub fn compute(&mut self, duration: Nanos) {
        let stream = self.port.app_stream();
        self.port.enqueue_kernel(stream, duration);
    }

    /// Whether the app stream has drained.
    pub fn stream_idle(&self) -> bool {
        self.port.stream_idle(self.port.app_stream())
    }

    /// Make subsequent app-stream work wait for the communicator's last
    /// collective (enqueues a wait on the service-side communicator event).
    pub fn wait_collective_on_stream(&mut self, comm_event: EventId) {
        let stream = self.port.app_stream();
        self.port.enqueue_wait(stream, comm_event);
    }

    /// Open an IPC memory handle into a device pointer.
    pub fn open_handle(&self, handle: MemHandle) -> Option<mccs_device::DevicePtr> {
        self.port.open_handle(handle)
    }

    /// Tenant-local randomness.
    pub fn rng(&mut self) -> &mut mccs_sim::Rng {
        self.port.rng()
    }

    /// Arm a timer so the program is re-polled at `at` (used before
    /// returning blocked from a timed wait).
    pub fn schedule_wake(&mut self, at: Nanos) {
        self.port.schedule_wake(at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::test_port::LoopbackPort;

    #[test]
    fn full_nccl_shaped_flow() {
        let mut session = ShimSession::new();
        let mut port = LoopbackPort::new();
        let mut api = ShimApi::new(&mut session, &mut port, GpuId(0));

        let a = api.alloc(Bytes::mib(8));
        let b = api.alloc(Bytes::mib(8));
        api.pump();
        let send = api.alloc_result(a).expect("allocated");
        let recv = api.alloc_result(b).expect("allocated");

        let comm = CommunicatorId(5);
        let init = api.comm_init_rank(comm, vec![GpuId(0), GpuId(1)], 0);
        api.pump();
        let (_, _event) = api.comm_result(init).expect("initialized");

        let coll = api.all_reduce(comm, Bytes::mib(8), (send, 0), (recv, 0));
        api.pump();
        assert!(api.collective_done(coll));
        assert_eq!(api.high_water(comm), Some(0));
    }

    #[test]
    #[should_panic(expected = "rank's GPU mismatch")]
    fn comm_init_validates_own_gpu() {
        let mut session = ShimSession::new();
        let mut port = LoopbackPort::new();
        let mut api = ShimApi::new(&mut session, &mut port, GpuId(0));
        api.comm_init_rank(CommunicatorId(1), vec![GpuId(3), GpuId(4)], 0);
    }

    #[test]
    fn compute_then_collective_dependency() {
        let mut session = ShimSession::new();
        let mut port = LoopbackPort::new();
        let mut api = ShimApi::new(&mut session, &mut port, GpuId(0));
        api.compute(Nanos::from_micros(100));
        let stream = api.app_stream();
        let req = api.collective_after_stream(
            CommunicatorId(1),
            CollectiveOp::AllGather,
            Bytes::mib(1),
            (MemHandle(0), 0),
            (MemHandle(1), 0),
            stream,
        );
        api.pump();
        // loopback answers instantly; the real service would wait on the event
        assert!(api.collective_done(req));
        // the command carried the dependency event
        let sent = &port.sent;
        let ShimCommand::Collective { coll, .. } = sent.last().expect("sent") else {
            panic!("expected collective");
        };
        assert!(coll.depends_on.is_some());
    }
}
