//! Poll-style tenant programs.
//!
//! An [`AppProgram`] is one rank of a tenant application: the harness
//! polls it with a [`ShimApi`] until it reports [`AppStatus::Finished`].
//! Programs are state machines — each poll does bounded work and returns.
//!
//! [`ScriptedProgram`] interprets a declarative step list, which covers
//! most tests and examples; richer workloads (the trace-replaying traffic
//! generator of `mccs-workloads`) implement the trait directly.

use crate::api::ShimApi;
use crate::session::ReqId;
use mccs_collectives::CollectiveOp;
use mccs_device::MemHandle;
use mccs_ipc::CommunicatorId;
use mccs_sim::{Bytes, Nanos};
use mccs_topology::GpuId;

/// Result of one program poll.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AppStatus {
    /// Did work; poll again soon.
    Running,
    /// Waiting on a completion/event; poll after the world advances.
    Blocked,
    /// Done; the rank exits.
    Finished,
}

/// One rank of a tenant application.
pub trait AppProgram {
    /// Advance the program as far as currently possible.
    fn poll(&mut self, api: &mut ShimApi<'_>) -> AppStatus;

    /// Diagnostic label.
    fn name(&self) -> String {
        "app".to_owned()
    }
}

/// A declarative workload step.
#[derive(Clone, Debug)]
pub enum ScriptStep {
    /// Allocate `size`, storing the handle in `slot`.
    Alloc {
        /// Buffer size.
        size: Bytes,
        /// Destination slot index.
        slot: usize,
    },
    /// Initialize this rank of a communicator.
    CommInit {
        /// Cluster-wide id.
        comm: CommunicatorId,
        /// Rank -> GPU map.
        world: Vec<GpuId>,
        /// This rank.
        rank: usize,
    },
    /// Issue a collective between two previously allocated slots and wait
    /// for it to complete.
    Collective {
        /// Target communicator (must be initialized).
        comm: CommunicatorId,
        /// The operation.
        op: CollectiveOp,
        /// Buffer size.
        size: Bytes,
        /// Send slot.
        send_slot: usize,
        /// Receive slot.
        recv_slot: usize,
    },
    /// Tear down this rank of a communicator and wait for the service to
    /// acknowledge. The proxy refuses while collectives are in flight, so
    /// scripts place this after the communicator has drained.
    CommDestroy {
        /// Cluster-wide id (must be initialized by this rank).
        comm: CommunicatorId,
    },
    /// Enqueue a compute kernel on the app stream and wait for it.
    Compute(Nanos),
    /// Busy-wait (virtual) until the given absolute time.
    SleepUntil(Nanos),
    /// Repeat the steps from `from_step` (inclusive) this many additional
    /// times.
    Repeat {
        /// First step of the loop body.
        from_step: usize,
        /// Additional iterations (0 = no-op).
        times: usize,
    },
}

/// Interprets a [`ScriptStep`] list.
pub struct ScriptedProgram {
    name: String,
    steps: Vec<ScriptStep>,
    pc: usize,
    slots: Vec<Option<MemHandle>>,
    pending: Option<ReqId>,
    repeats_left: Option<usize>,
    iterations_done: u64,
    failed_collectives: u64,
}

impl ScriptedProgram {
    /// A program executing `steps` in order.
    pub fn new(name: impl Into<String>, steps: Vec<ScriptStep>) -> Self {
        let max_slot = steps
            .iter()
            .map(|s| match s {
                ScriptStep::Alloc { slot, .. } => *slot + 1,
                ScriptStep::Collective {
                    send_slot,
                    recv_slot,
                    ..
                } => (*send_slot).max(*recv_slot) + 1,
                _ => 0,
            })
            .max()
            .unwrap_or(0);
        ScriptedProgram {
            name: name.into(),
            steps,
            pc: 0,
            slots: vec![None; max_slot],
            pending: None,
            repeats_left: None,
            iterations_done: 0,
            failed_collectives: 0,
        }
    }

    /// Completed loop iterations (for test assertions).
    pub fn iterations_done(&self) -> u64 {
        self.iterations_done
    }

    /// Collectives the service cleanly failed back to this program (the
    /// script proceeds past them, NCCL-tests style, and counts here).
    pub fn failed_collectives(&self) -> u64 {
        self.failed_collectives
    }

    fn slot(&self, idx: usize) -> MemHandle {
        self.slots[idx].expect("script used a slot before allocating it")
    }
}

impl AppProgram for ScriptedProgram {
    fn poll(&mut self, api: &mut ShimApi<'_>) -> AppStatus {
        api.pump();
        let mut progressed = false;
        loop {
            if self.pc >= self.steps.len() {
                return AppStatus::Finished;
            }
            // Surface request errors instead of hanging forever.
            if let Some(req) = self.pending {
                if let Some(msg) = api.error(req) {
                    panic!("script '{}' step {} failed: {msg}", self.name, self.pc);
                }
            }
            let step = self.steps[self.pc].clone();
            match step {
                ScriptStep::Alloc { size, slot } => match self.pending {
                    None => {
                        self.pending = Some(api.alloc(size));
                        api.pump();
                    }
                    Some(req) => match api.alloc_result(req) {
                        Some(h) => {
                            self.slots[slot] = Some(h);
                            self.pending = None;
                            self.pc += 1;
                            progressed = true;
                            continue;
                        }
                        None => return AppStatus::Blocked,
                    },
                },
                ScriptStep::CommInit { comm, world, rank } => match self.pending {
                    None => {
                        self.pending = Some(api.comm_init_rank(comm, world, rank));
                        api.pump();
                    }
                    Some(req) => match api.comm_result(req) {
                        Some(_) => {
                            self.pending = None;
                            self.pc += 1;
                            progressed = true;
                            continue;
                        }
                        None => return AppStatus::Blocked,
                    },
                },
                ScriptStep::Collective {
                    comm,
                    op,
                    size,
                    send_slot,
                    recv_slot,
                } => match self.pending {
                    None => {
                        let send = (self.slot(send_slot), 0);
                        let recv = (self.slot(recv_slot), 0);
                        self.pending = Some(api.collective(comm, op, size, send, recv, None));
                        api.pump();
                    }
                    Some(req) => {
                        if api.collective_done(req) {
                            self.pending = None;
                            self.pc += 1;
                            progressed = true;
                            continue;
                        }
                        // A cleanly failed collective is terminal too: the
                        // buffers are undefined but the program moves on.
                        if api.collective_failed(req).is_some() {
                            self.failed_collectives += 1;
                            self.pending = None;
                            self.pc += 1;
                            progressed = true;
                            continue;
                        }
                        return AppStatus::Blocked;
                    }
                },
                ScriptStep::CommDestroy { comm } => match self.pending {
                    None => {
                        self.pending = Some(api.comm_destroy(comm));
                        api.pump();
                    }
                    Some(req) => {
                        if api.destroy_done(req) {
                            self.pending = None;
                            self.pc += 1;
                            progressed = true;
                            continue;
                        }
                        return AppStatus::Blocked;
                    }
                },
                ScriptStep::Compute(duration) => match self.pending {
                    None => {
                        api.compute(duration);
                        // mark "issued" with a sentinel: reuse pending None->Some
                        // by tracking via stream idleness instead.
                        self.pending = Some(ReqId(u64::MAX));
                    }
                    Some(_) => {
                        if api.stream_idle() {
                            self.pending = None;
                            self.pc += 1;
                            progressed = true;
                            continue;
                        }
                        return AppStatus::Blocked;
                    }
                },
                ScriptStep::SleepUntil(t) => {
                    if api.now() >= t {
                        self.pc += 1;
                        progressed = true;
                        continue;
                    }
                    api.schedule_wake(t);
                    return AppStatus::Blocked;
                }
                ScriptStep::Repeat { from_step, times } => {
                    assert!(from_step < self.pc, "Repeat must jump backwards");
                    let left = self.repeats_left.get_or_insert(times);
                    if *left == 0 {
                        self.repeats_left = None;
                        self.pc += 1;
                    } else {
                        *left -= 1;
                        self.iterations_done += 1;
                        self.pc = from_step;
                    }
                    progressed = true;
                    continue;
                }
            }
            return if progressed {
                AppStatus::Running
            } else {
                AppStatus::Blocked
            };
        }
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::test_port::LoopbackPort;
    use crate::session::ShimSession;
    use mccs_collectives::op::all_reduce_sum;

    fn run_to_completion(prog: &mut ScriptedProgram, port: &mut LoopbackPort) -> usize {
        let mut session = ShimSession::new();
        let mut polls = 0;
        loop {
            let mut api = ShimApi::new(&mut session, port, GpuId(0));
            match prog.poll(&mut api) {
                AppStatus::Finished => return polls,
                _ => {
                    polls += 1;
                    port.now += Nanos::from_micros(10);
                    assert!(polls < 10_000, "script did not terminate");
                }
            }
        }
    }

    #[test]
    fn script_runs_allreduce_loop() {
        let comm = CommunicatorId(1);
        let mut prog = ScriptedProgram::new(
            "test",
            vec![
                ScriptStep::Alloc {
                    size: Bytes::mib(8),
                    slot: 0,
                },
                ScriptStep::Alloc {
                    size: Bytes::mib(8),
                    slot: 1,
                },
                ScriptStep::CommInit {
                    comm,
                    world: vec![GpuId(0)],
                    rank: 0,
                },
                ScriptStep::Collective {
                    comm,
                    op: all_reduce_sum(),
                    size: Bytes::mib(8),
                    send_slot: 0,
                    recv_slot: 1,
                },
                ScriptStep::Repeat {
                    from_step: 3,
                    times: 4,
                },
            ],
        );
        let mut port = LoopbackPort::new();
        run_to_completion(&mut prog, &mut port);
        assert_eq!(prog.iterations_done(), 4);
        // 5 collectives total (1 + 4 repeats)
        let colls = port
            .sent
            .iter()
            .filter(|c| matches!(c, mccs_ipc::ShimCommand::Collective { .. }))
            .count();
        assert_eq!(colls, 5);
    }

    #[test]
    fn compute_blocks_until_stream_drains() {
        let mut prog = ScriptedProgram::new(
            "compute",
            vec![ScriptStep::Compute(Nanos::from_micros(100))],
        );
        let mut port = LoopbackPort::new();
        let mut session = ShimSession::new();
        {
            let mut api = ShimApi::new(&mut session, &mut port, GpuId(0));
            assert_eq!(prog.poll(&mut api), AppStatus::Blocked);
        }
        port.now = Nanos::from_micros(100);
        {
            let mut api = ShimApi::new(&mut session, &mut port, GpuId(0));
            assert_eq!(prog.poll(&mut api), AppStatus::Finished);
        }
    }

    #[test]
    fn sleep_until_waits_for_clock() {
        let mut prog =
            ScriptedProgram::new("sleep", vec![ScriptStep::SleepUntil(Nanos::from_millis(5))]);
        let mut port = LoopbackPort::new();
        let mut session = ShimSession::new();
        {
            let mut api = ShimApi::new(&mut session, &mut port, GpuId(0));
            assert_eq!(prog.poll(&mut api), AppStatus::Blocked);
        }
        port.now = Nanos::from_millis(5);
        {
            let mut api = ShimApi::new(&mut session, &mut port, GpuId(0));
            assert_eq!(prog.poll(&mut api), AppStatus::Finished);
        }
    }

    #[test]
    #[should_panic(expected = "slot before allocating")]
    fn using_unallocated_slot_panics() {
        let mut prog = ScriptedProgram::new(
            "bad",
            vec![ScriptStep::Collective {
                comm: CommunicatorId(0),
                op: all_reduce_sum(),
                size: Bytes::mib(1),
                send_slot: 0,
                recv_slot: 1,
            }],
        );
        let mut port = LoopbackPort::new();
        let mut session = ShimSession::new();
        let mut api = ShimApi::new(&mut session, &mut port, GpuId(0));
        prog.poll(&mut api);
    }
}
