//! # mccs-shim — the tenant-side MCCS library
//!
//! The lightweight library tenant applications link against (§3): it
//! preserves an NCCL-shaped API (communicator init, collectives enqueued
//! with stream dependencies) while forwarding every operation to the MCCS
//! service over the shared-memory command queues of `mccs-ipc`. The tenant
//! never sees the topology, ring orders, or routes — only handles and
//! completions.
//!
//! ## Pieces
//! * [`port::ShimPort`] — the narrow window a tenant process has onto its
//!   host: its command/completion queues, its own device streams/events,
//!   and the clock. The simulation harness (`mccs-core`) implements it.
//! * [`session::ShimSession`] — request bookkeeping: correlation ids,
//!   pending-command retry under back-pressure, completion routing.
//! * [`api::ShimApi`] — what application code calls: `alloc`,
//!   `comm_init`, `all_reduce`, `all_gather`, ... mirroring NCCL.
//! * [`program::AppProgram`] — the poll-style application abstraction the
//!   harness executes, plus [`program::ScriptedProgram`] for declarative
//!   test/example workloads.

pub mod api;
pub mod port;
pub mod program;
pub mod session;

pub use api::ShimApi;
pub use port::ShimPort;
pub use program::{AppProgram, AppStatus, ScriptStep, ScriptedProgram};
pub use session::{ReqId, ShimSession};
