//! # mccs-ipc — shim ⇄ service communication
//!
//! The paper's applications are compiled against a thin shim that talks to
//! the MCCS service over **shared-memory command queues** (§3). This crate
//! models that boundary: a latency-accurate SPSC queue ([`queue`]) and the
//! command/completion protocol ([`protocol`]) the shim and the service's
//! frontend engines speak.
//!
//! The queue latency is the physical quantity behind the paper's measured
//! "overall latency of 50–80 µs" on the datapath for small messages
//! (§6.2) — commands hop shim → frontend → proxy (→ transport), and each
//! hop costs a queue traversal. [`config::IpcConfig`] holds those knobs.

pub mod config;
pub mod protocol;
pub mod queue;

pub use config::IpcConfig;
pub use protocol::{
    AppId, CollectiveRequest, CommunicatorId, ErrorCode, ShimCommand, ShimCompletion,
};
pub use queue::LatencyQueue;
