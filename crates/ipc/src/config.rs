//! IPC latency configuration.

use mccs_sim::{Nanos, Rng};

/// Latency knobs for the shim ⇄ service boundary and the service's
/// internal engine hops.
///
/// The defaults reproduce the paper's measured datapath overhead: "the
/// communication between the application and the MCCS service, as well as
/// between the internal engines of the MCCS service, incurs an overall
/// latency of 50-80 us" (§6.2). A collective traverses
/// shim → frontend → proxy (2 hops) and its completion signals back, plus
/// internal queue hops; with 20 µs per boundary crossing and ~10 µs per
/// internal hop plus jitter, the round trip lands in the measured band.
#[derive(Clone, Debug)]
pub struct IpcConfig {
    /// Shim → frontend command queue latency.
    pub command_latency: Nanos,
    /// Frontend → shim completion queue latency.
    pub completion_latency: Nanos,
    /// Internal engine-to-engine hop latency (frontend → proxy,
    /// proxy → transport).
    pub engine_hop_latency: Nanos,
    /// Uniform jitter fraction applied per message (0.0 = deterministic).
    pub jitter_frac: f64,
    /// Command/completion queue depth before back-pressure.
    pub queue_capacity: usize,
}

impl Default for IpcConfig {
    fn default() -> Self {
        IpcConfig {
            command_latency: Nanos::from_micros(20),
            completion_latency: Nanos::from_micros(20),
            engine_hop_latency: Nanos::from_micros(10),
            jitter_frac: 0.5,
            queue_capacity: 1024,
        }
    }
}

impl IpcConfig {
    /// A zero-latency configuration (ablation: measures pure algorithm
    /// effects with no service overhead).
    pub fn zero() -> Self {
        IpcConfig {
            command_latency: Nanos::ZERO,
            completion_latency: Nanos::ZERO,
            engine_hop_latency: Nanos::ZERO,
            jitter_frac: 0.0,
            queue_capacity: 1024,
        }
    }

    /// Apply jitter to a base latency: uniform in
    /// `[base, base * (1 + jitter_frac)]`.
    pub fn jittered(&self, base: Nanos, rng: &mut Rng) -> Nanos {
        if self.jitter_frac <= 0.0 || base == Nanos::ZERO {
            return base;
        }
        base.mul_f64(1.0 + rng.f64() * self.jitter_frac)
    }

    /// A jittered command latency sample.
    pub fn sample_command_latency(&self, rng: &mut Rng) -> Nanos {
        self.jittered(self.command_latency, rng)
    }

    /// A jittered completion latency sample.
    pub fn sample_completion_latency(&self, rng: &mut Rng) -> Nanos {
        self.jittered(self.completion_latency, rng)
    }

    /// A jittered internal hop latency sample.
    pub fn sample_hop_latency(&self, rng: &mut Rng) -> Nanos {
        self.jittered(self.engine_hop_latency, rng)
    }

    /// The deterministic round-trip floor for one collective issue path:
    /// command + 2 internal hops + completion. Useful for latency
    /// assertions in tests.
    pub fn round_trip_floor(&self) -> Nanos {
        self.command_latency + self.engine_hop_latency * 2 + self.completion_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_round_trip_in_paper_band() {
        // §6.2: shim <-> service plus internal engine hops cost 50-80 us
        // overall; the floor sits at the band's bottom, the jittered
        // ceiling within ~20% of its top (the datapath adds the transport
        // hop on top of this floor).
        let cfg = IpcConfig::default();
        let floor = cfg.round_trip_floor();
        let ceiling = floor.mul_f64(1.0 + cfg.jitter_frac);
        assert!(
            floor >= Nanos::from_micros(45) && floor <= Nanos::from_micros(65),
            "floor {floor} outside band"
        );
        assert!(
            ceiling <= Nanos::from_micros(95),
            "ceiling {ceiling} too far above the band"
        );
    }

    #[test]
    fn jitter_bounded_and_deterministic_per_seed() {
        let cfg = IpcConfig::default();
        let base = Nanos::from_micros(10);
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(1);
        for _ in 0..100 {
            let x = cfg.jittered(base, &mut a);
            assert!(x >= base && x <= base.mul_f64(1.0 + cfg.jitter_frac + 1e-9));
            assert_eq!(x, cfg.jittered(base, &mut b));
        }
    }

    #[test]
    fn zero_config_has_no_latency() {
        let cfg = IpcConfig::zero();
        let mut rng = Rng::seed_from(0);
        assert_eq!(cfg.sample_command_latency(&mut rng), Nanos::ZERO);
        assert_eq!(cfg.round_trip_floor(), Nanos::ZERO);
    }
}
