//! The shim ⇄ service command protocol.
//!
//! Mirrors the paper's §4.1 interface surface:
//!
//! * **memory management** — allocation is redirected to the service,
//!   which returns an inter-process memory handle; frees flow back the
//!   same way;
//! * **communicator setup** — `CommInit` registers this rank; the reply
//!   carries the communicator's service-side event handle the shim uses to
//!   order subsequent app-stream work after collectives;
//! * **collectives** — buffer ranges travel as `(handle, offset)` pairs
//!   (never raw pointers — the service validates them), together with the
//!   app-stream dependency event the service must wait on before touching
//!   the buffers.

use mccs_collectives::CollectiveOp;
use mccs_device::{EventId, MemHandle};
use mccs_sim::Bytes;
use mccs_topology::GpuId;
use std::fmt;

/// A tenant application instance (one per process per host).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AppId(pub u32);

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}", self.0)
    }
}

/// A communicator, unique cluster-wide (all ranks share the id — the
/// "unique id" NCCL distributes out of band).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CommunicatorId(pub u64);

impl fmt::Display for CommunicatorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "comm{}", self.0)
    }
}

/// A buffer range: IPC handle plus byte offset (validated service-side).
pub type BufferRef = (MemHandle, u64);

/// NCCL-style result classification carried on error completions.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ErrorCode {
    /// A caller-supplied argument was malformed (cf. `ncclInvalidArgument`).
    InvalidArgument,
    /// The call violated API usage rules (cf. `ncclInvalidUsage`).
    InvalidUsage,
    /// An unrecoverable fabric/system failure (cf. `ncclSystemError`):
    /// retries and recovery were exhausted.
    SystemError,
    /// A service-internal inconsistency (cf. `ncclInternalError`).
    InternalError,
    /// Another rank of the communicator failed (cf. `ncclRemoteError`).
    RemoteError,
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::InvalidArgument => "InvalidArgument",
            ErrorCode::InvalidUsage => "InvalidUsage",
            ErrorCode::SystemError => "SystemError",
            ErrorCode::InternalError => "InternalError",
            ErrorCode::RemoteError => "RemoteError",
        };
        f.write_str(s)
    }
}

/// One collective invocation.
#[derive(Clone, Copy, Debug)]
pub struct CollectiveRequest {
    /// Target communicator.
    pub comm: CommunicatorId,
    /// Operation.
    pub op: CollectiveOp,
    /// Buffer size (NCCL-tests semantics; see `mccs-collectives`).
    pub size: Bytes,
    /// Send buffer.
    pub send: BufferRef,
    /// Receive buffer.
    pub recv: BufferRef,
    /// App-stream event the service must wait on before reading the send
    /// buffer (`None` when the data is already materialized).
    pub depends_on: Option<EventId>,
}

/// Commands the shim pushes to its frontend engine.
#[derive(Clone, Debug)]
pub enum ShimCommand {
    /// Allocate `size` bytes on `gpu`.
    MemAlloc {
        /// Request correlation id.
        req: u64,
        /// Target GPU (must be one assigned to the app).
        gpu: GpuId,
        /// Allocation size.
        size: Bytes,
    },
    /// Free a previous allocation.
    MemFree {
        /// Request correlation id.
        req: u64,
        /// The allocation to release.
        handle: MemHandle,
    },
    /// Register this rank of a communicator.
    CommInit {
        /// Request correlation id.
        req: u64,
        /// Cluster-wide communicator id.
        comm: CommunicatorId,
        /// All participant GPUs in rank order (the user-assigned order —
        /// exactly the information NCCL would build its ring from).
        world: Vec<GpuId>,
        /// This shim's rank.
        rank: usize,
    },
    /// Tear down this rank of a communicator.
    CommDestroy {
        /// Request correlation id.
        req: u64,
        /// The communicator to destroy.
        comm: CommunicatorId,
    },
    /// Issue a collective.
    Collective {
        /// Request correlation id.
        req: u64,
        /// The invocation.
        coll: CollectiveRequest,
    },
}

impl ShimCommand {
    /// The request correlation id.
    pub fn req(&self) -> u64 {
        match *self {
            ShimCommand::MemAlloc { req, .. }
            | ShimCommand::MemFree { req, .. }
            | ShimCommand::CommInit { req, .. }
            | ShimCommand::CommDestroy { req, .. }
            | ShimCommand::Collective { req, .. } => req,
        }
    }
}

/// Completions the frontend engine pushes back to the shim.
#[derive(Clone, Debug)]
pub enum ShimCompletion {
    /// Allocation done; the shim opens `handle` for the device pointer.
    MemAlloc {
        /// Correlates with the command.
        req: u64,
        /// The allocation's IPC handle.
        handle: MemHandle,
    },
    /// Free done.
    MemFree {
        /// Correlates with the command.
        req: u64,
    },
    /// Communicator rank registered.
    CommInit {
        /// Correlates with the command.
        req: u64,
        /// The communicator.
        comm: CommunicatorId,
        /// Service-side event recorded after every collective on this
        /// communicator; the shim waits on it from app streams.
        comm_event: EventId,
    },
    /// Communicator rank destroyed.
    CommDestroy {
        /// Correlates with the command.
        req: u64,
    },
    /// Collective accepted and sequenced.
    CollectiveLaunched {
        /// Correlates with the command.
        req: u64,
        /// Service-assigned sequence number within the communicator.
        seq: u64,
    },
    /// Collective `seq` on `comm` finished (also signaled via `comm_event`).
    CollectiveDone {
        /// The communicator.
        comm: CommunicatorId,
        /// The finished collective's sequence number.
        seq: u64,
    },
    /// Collective `seq` on `comm` was cleanly aborted by the service after
    /// recovery was exhausted. The tenant must treat the communicator's
    /// result buffers for this operation as undefined, NCCL-style.
    CollectiveFailed {
        /// The communicator.
        comm: CommunicatorId,
        /// The failed collective's sequence number.
        seq: u64,
        /// NCCL-style classification.
        code: ErrorCode,
        /// Human-readable cause.
        message: String,
    },
    /// A command failed (bad handle, invalid range, unknown communicator).
    Error {
        /// Correlates with the command.
        req: u64,
        /// NCCL-style classification.
        code: ErrorCode,
        /// Human-readable cause.
        message: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccs_collectives::op::all_reduce_sum;

    #[test]
    fn req_extraction_covers_all_commands() {
        let cmds = [
            ShimCommand::MemAlloc {
                req: 1,
                gpu: GpuId(0),
                size: Bytes::mib(1),
            },
            ShimCommand::MemFree {
                req: 2,
                handle: MemHandle(0),
            },
            ShimCommand::CommInit {
                req: 3,
                comm: CommunicatorId(9),
                world: vec![GpuId(0), GpuId(1)],
                rank: 0,
            },
            ShimCommand::CommDestroy {
                req: 4,
                comm: CommunicatorId(9),
            },
            ShimCommand::Collective {
                req: 5,
                coll: CollectiveRequest {
                    comm: CommunicatorId(9),
                    op: all_reduce_sum(),
                    size: Bytes::mib(8),
                    send: (MemHandle(1), 0),
                    recv: (MemHandle(2), 0),
                    depends_on: None,
                },
            },
        ];
        let reqs: Vec<u64> = cmds.iter().map(ShimCommand::req).collect();
        assert_eq!(reqs, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn ids_display() {
        assert_eq!(format!("{}", AppId(3)), "app3");
        assert_eq!(format!("{}", CommunicatorId(7)), "comm7");
    }
}
