//! Latency-modeled SPSC queues.
//!
//! A [`LatencyQueue`] delivers items in FIFO order, each becoming visible
//! to the consumer `latency` after it was pushed — the virtual-time model
//! of a shared-memory ring buffer polled by an engine on another core.
//! Bounded capacity models back-pressure: a full queue rejects pushes and
//! the producer must retry on a later poll, exactly how the shim behaves
//! when the service falls behind.

use mccs_sim::Nanos;
use std::collections::VecDeque;

/// A FIFO queue whose items take time to become visible.
#[derive(Debug)]
pub struct LatencyQueue<T> {
    items: VecDeque<(Nanos, T)>,
    capacity: usize,
}

impl<T> LatencyQueue<T> {
    /// An empty queue holding at most `capacity` in-flight items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        LatencyQueue {
            items: VecDeque::new(),
            capacity,
        }
    }

    /// Push at time `now` with visibility delay `latency`. Returns the item
    /// back on a full queue (back-pressure).
    ///
    /// FIFO is preserved even with heterogeneous latencies: an item is
    /// never delivered before its predecessor (visibility times are clamped
    /// monotone).
    pub fn push(&mut self, now: Nanos, latency: Nanos, item: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            return Err(item);
        }
        let mut visible_at = now + latency;
        if let Some(&(prev, _)) = self.items.back() {
            visible_at = visible_at.max(prev);
        }
        self.items.push_back((visible_at, item));
        Ok(())
    }

    /// Pop the head if it is visible at `now`.
    pub fn pop(&mut self, now: Nanos) -> Option<T> {
        if self.items.front().is_some_and(|&(t, _)| t <= now) {
            self.items.pop_front().map(|(_, item)| item)
        } else {
            None
        }
    }

    /// Peek the head if visible.
    pub fn peek(&self, now: Nanos) -> Option<&T> {
        self.items
            .front()
            .and_then(|(t, item)| (*t <= now).then_some(item))
    }

    /// Iterate the prefix of items visible at `now`, oldest first,
    /// without consuming them. Read-only — safe for the wave scheduler's
    /// concurrent plan phase, where an engine pre-decodes what its next
    /// `pop` loop will drain from a frozen world view.
    pub fn visible(&self, now: Nanos) -> impl Iterator<Item = &T> {
        self.items
            .iter()
            .take_while(move |&&(t, _)| t <= now)
            .map(|(_, item)| item)
    }

    /// When the next item becomes visible (`None` when empty). Drives the
    /// simulation's wake-up scheduling.
    pub fn next_visible(&self) -> Option<Nanos> {
        self.items.front().map(|&(t, _)| t)
    }

    /// Items in flight (visible or not).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether a push would currently be rejected.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_invisible_until_latency_elapses() {
        let mut q = LatencyQueue::new(8);
        q.push(Nanos::ZERO, Nanos::from_micros(20), "a")
            .expect("room");
        assert_eq!(q.pop(Nanos::from_micros(19)), None);
        assert_eq!(q.peek(Nanos::from_micros(20)), Some(&"a"));
        assert_eq!(q.pop(Nanos::from_micros(20)), Some("a"));
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_preserved_despite_latency_inversion() {
        let mut q = LatencyQueue::new(8);
        q.push(Nanos::ZERO, Nanos::from_micros(50), 1)
            .expect("room");
        // pushed later with a shorter latency — must still arrive second
        q.push(Nanos::from_micros(10), Nanos::from_micros(10), 2)
            .expect("room");
        assert_eq!(q.pop(Nanos::from_micros(49)), None);
        assert_eq!(q.pop(Nanos::from_micros(50)), Some(1));
        assert_eq!(q.pop(Nanos::from_micros(50)), Some(2));
    }

    #[test]
    fn backpressure_on_full_queue() {
        let mut q = LatencyQueue::new(2);
        q.push(Nanos::ZERO, Nanos::ZERO, 1).expect("room");
        q.push(Nanos::ZERO, Nanos::ZERO, 2).expect("room");
        assert!(q.is_full());
        assert_eq!(q.push(Nanos::ZERO, Nanos::ZERO, 3), Err(3));
        q.pop(Nanos::ZERO).expect("visible");
        q.push(Nanos::ZERO, Nanos::ZERO, 3).expect("room again");
    }

    #[test]
    fn next_visible_reports_head() {
        let mut q = LatencyQueue::new(4);
        assert_eq!(q.next_visible(), None);
        q.push(Nanos::from_micros(5), Nanos::from_micros(20), ())
            .expect("room");
        assert_eq!(q.next_visible(), Some(Nanos::from_micros(25)));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        LatencyQueue::<()>::new(0);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Arbitrary push/pop schedules deliver every item exactly
            /// once, in push order, never before its visibility time.
            #[test]
            fn fifo_and_latency_always_hold(
                pushes in proptest::collection::vec((0u64..1000, 0u64..100), 1..50)
            ) {
                let mut q = LatencyQueue::new(64);
                let mut pushed = Vec::new();
                let mut t = Nanos::ZERO;
                for (i, &(gap, lat)) in pushes.iter().enumerate() {
                    t += Nanos::from_micros(gap);
                    q.push(t, Nanos::from_micros(lat), i).expect("large capacity");
                    pushed.push((t, Nanos::from_micros(lat)));
                }
                // drain at +10ms
                let end = t + Nanos::from_millis(10);
                let mut got = Vec::new();
                while let Some(x) = q.pop(end) {
                    got.push(x);
                }
                prop_assert_eq!(got, (0..pushes.len()).collect::<Vec<_>>());
            }
        }
    }
}
