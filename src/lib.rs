//! # MCCS — Managed Collective Communication as a Service
//!
//! Facade crate re-exporting the full MCCS reproduction (SIGCOMM 2024).
//! See `README.md` for a tour and `DESIGN.md` for the architecture.

pub use mccs_baseline as baseline;
pub use mccs_collectives as collectives;
pub use mccs_control as control;
pub use mccs_core as service;
pub use mccs_device as device;
pub use mccs_ipc as ipc;
pub use mccs_netsim as netsim;
pub use mccs_shim as shim;
pub use mccs_sim as sim;
pub use mccs_topology as topology;
pub use mccs_workloads as workloads;
