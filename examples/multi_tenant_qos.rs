//! Multi-tenant QoS walkthrough: three tenants share the testbed while
//! the provider walks through its policy arsenal — fair flow assignment,
//! priority flow assignment, and traffic scheduling — without touching a
//! single tenant.
//!
//! This condenses the paper's §6.4 study: tenant A trains VGG-19 with
//! twice the NICs of B and C, who fine-tune GPT-2.7B.
//!
//! Run: `cargo run --release --example multi_tenant_qos`

use mccs::control::{
    apply_traffic_schedule, optimize_cluster, ChannelPolicy, FlowAssignment, PolicySpec,
};
use mccs::ipc::CommunicatorId;
use mccs::service::{Cluster, ClusterConfig};
use mccs::sim::Nanos;
use mccs::topology::{presets, GpuId, RouteId};
use mccs::workloads::generator::spawn_traffic_app;
use mccs::workloads::{gpt27b_tensor_parallel, vgg19_data_parallel};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

fn main() {
    let topo = Arc::new(presets::testbed());
    let mut cluster = Cluster::new(Arc::clone(&topo), ClusterConfig::default());

    // Setup 3 of the paper's Figure 5b: A holds both GPUs of H0 and H2
    // (2 NICs/host); B and C hold one GPU each on H1 and H3.
    let a = spawn_traffic_app(
        &mut cluster,
        "A-vgg",
        CommunicatorId(1),
        &[GpuId(0), GpuId(1), GpuId(4), GpuId(5)],
        &vgg19_data_parallel(6),
        Nanos::from_millis(20),
    );
    let b = spawn_traffic_app(
        &mut cluster,
        "B-gpt",
        CommunicatorId(2),
        &[GpuId(2), GpuId(6)],
        &gpt27b_tensor_parallel(3),
        Nanos::from_millis(25),
    );
    let c = spawn_traffic_app(
        &mut cluster,
        "C-gpt",
        CommunicatorId(3),
        &[GpuId(3), GpuId(7)],
        &gpt27b_tensor_parallel(3),
        Nanos::from_millis(31),
    );

    // Let everyone register, then apply the baseline policy: locality
    // rings + fair flow assignment.
    cluster.run_until(Nanos::from_millis(2));
    let reconfigured = optimize_cluster(&mut cluster, &PolicySpec::mccs());
    println!("FFA applied to {} communicators", reconfigured.len());

    // Inspect what the controller sees (and the tenants never do).
    for info in cluster.mgmt().communicators() {
        println!(
            "  {}: {} ranks on GPUs {:?}, {} channel(s), epoch {}",
            info.comm,
            info.world.len(),
            info.world,
            info.channels,
            info.epoch
        );
    }

    // Mid-run, the administrator prioritizes A: dedicate inter-rack
    // route 0 to it (PFA). Tenants keep running, unaware.
    cluster.run_until(Nanos::from_millis(400));
    optimize_cluster(
        &mut cluster,
        &PolicySpec {
            optimal_rings: true,
            channels: ChannelPolicy::MatchNics,
            assignment: FlowAssignment::Pfa {
                priorities: BTreeMap::from([(a, 0u32)]),
                reserved: BTreeSet::from([RouteId(0)]),
            },
        },
    );
    println!("\nt=0.4s: PFA applied — route 0 is now A's alone");

    // Later, prioritize B over C: profile B's idle cycles from the
    // management trace and gate C into them (TS).
    cluster.run_until(Nanos::from_millis(900));
    if apply_traffic_schedule(&mut cluster, b, &[c]) {
        println!("t=0.9s: TS applied — C now sends only in B's idle windows");
    }

    cluster.run_until_quiescent(Nanos::from_secs(120));

    println!("\njob completion times:");
    for (app, name) in [
        (a, "A (VGG, priority 0)"),
        (b, "B (GPT, TS-boosted)"),
        (c, "C (GPT, gated)"),
    ] {
        let tl = cluster.mgmt().timeline(app);
        let done = tl.last().expect("finished").completed_at.expect("done");
        println!(
            "  {name:<22} {:>8.3}s  ({} collectives)",
            done.as_secs_f64(),
            tl.len()
        );
    }
    println!("\nidle gaps the TS policy found in B's trace (first 3):");
    for (start, len) in cluster.mgmt().idle_gaps(b).into_iter().take(3) {
        println!("  at {:.3}s for {len}", start.as_secs_f64());
    }
}
