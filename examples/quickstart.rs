//! Quickstart: run an AllReduce through the MCCS service on the paper's
//! 4-host testbed and print its algorithm bandwidth.
//!
//! The tenant side is NCCL-shaped: allocate buffers (redirected to the
//! service), init a communicator, issue collectives. Everything below the
//! API — ring construction, routing, transport — belongs to the provider.
//!
//! Run: `cargo run --release --example quickstart`

use mccs::collectives::op::all_reduce_sum;
use mccs::collectives::{algo_bandwidth, bus_bandwidth};
use mccs::ipc::CommunicatorId;
use mccs::service::{Cluster, ClusterConfig};
use mccs::shim::{AppProgram, ScriptStep, ScriptedProgram};
use mccs::sim::{Bytes, Nanos};
use mccs::topology::{presets, GpuId};
use std::sync::Arc;

fn main() {
    // The provider's side: the physical testbed (2 racks x 2 hosts x
    // 2 GPUs, 50 Gbps NICs, 2x oversubscription) and the service.
    let topo = Arc::new(presets::testbed());
    let mut cluster = Cluster::new(Arc::clone(&topo), ClusterConfig::default());

    // The tenant's side: four ranks, one per host, each running the same
    // NCCL-shaped program.
    let comm = CommunicatorId(1);
    let gpus = vec![GpuId(0), GpuId(2), GpuId(4), GpuId(6)];
    let size = Bytes::mib(64);
    let iters = 5;

    let ranks = gpus
        .iter()
        .enumerate()
        .map(|(rank, &gpu)| {
            let program = ScriptedProgram::new(
                format!("quickstart/r{rank}"),
                vec![
                    ScriptStep::Alloc { size, slot: 0 },
                    ScriptStep::Alloc { size, slot: 1 },
                    ScriptStep::CommInit {
                        comm,
                        world: gpus.clone(),
                        rank,
                    },
                    ScriptStep::Collective {
                        comm,
                        op: all_reduce_sum(),
                        size,
                        send_slot: 0,
                        recv_slot: 1,
                    },
                    ScriptStep::Repeat {
                        from_step: 3,
                        times: iters - 1,
                    },
                ],
            );
            (gpu, Box::new(program) as Box<dyn AppProgram>)
        })
        .collect();
    let app = cluster.add_app("quickstart", ranks);

    // Run to completion in virtual time.
    let end = cluster.run_until_quiescent(Nanos::from_secs(30));
    println!("simulation finished at t={end}");

    // The management plane saw every collective.
    println!("\nper-collective results (64 MiB AllReduce over 4 ranks):");
    for rec in cluster.mgmt().timeline(app) {
        let lat = rec.latency().expect("completed");
        println!(
            "  seq {}  latency {:>9}  algbw {:.2} GB/s  busbw {:.2} GB/s",
            rec.seq,
            format!("{lat}"),
            algo_bandwidth(size, lat).as_gbytes_per_sec(),
            bus_bandwidth(rec.op, gpus.len(), size, lat).as_gbytes_per_sec(),
        );
    }
    println!(
        "\nline-rate bound: 4.17 GB/s algorithm bandwidth \
         (50 Gbps NIC / the 2(n-1)/n AllReduce factor)"
    );
}
