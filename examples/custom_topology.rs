//! Build a custom fabric with [`TopologyBuilder`] and let the controller
//! reason about it: a three-rack, three-spine cluster with asymmetric
//! rack sizes, a tenant scattered across it, and the locality-aware ring
//! + fair flow assignment pipeline applied end to end.
//!
//! Run: `cargo run --release --example custom_topology`

use mccs::baseline::{BaselineConfig, BaselineJob, Phase, RingChoice};
use mccs::collectives::crossrack;
use mccs::collectives::op::all_reduce_sum;
use mccs::control::flow_policy::JobFlows;
use mccs::control::{ffa, optimal_rings, ChannelPolicy};
use mccs::service::{Cluster, ClusterConfig};
use mccs::sim::{Bandwidth, Bytes, Nanos};
use mccs::topology::{GpuId, PodId, SwitchRole, TopologyBuilder};
use std::sync::Arc;

fn main() {
    // ---- build the fabric --------------------------------------------------
    let mut b = TopologyBuilder::new();
    let pod = PodId(0);
    let spines: Vec<_> = (0..3)
        .map(|_| b.add_switch(SwitchRole::Spine, None))
        .collect();
    // Racks of different sizes: 3, 2 and 1 hosts.
    let mut all_hosts = Vec::new();
    for hosts in [3usize, 2, 1] {
        let rack = b.add_rack(pod);
        let leaf = b.add_switch(SwitchRole::Leaf, Some(rack));
        for &spine in &spines {
            b.connect_switches(leaf, spine, Bandwidth::gbps(100.0));
        }
        for _ in 0..hosts {
            all_hosts.push(b.add_host(rack, leaf, 4, Bandwidth::gbps(100.0)));
        }
    }
    let topo = Arc::new(b.build());
    println!(
        "fabric: {} hosts, {} GPUs, {} switches, {} links, {} racks",
        topo.hosts().len(),
        topo.gpus().len(),
        topo.switches().len(),
        topo.links().len(),
        topo.rack_count()
    );

    // ---- a tenant scattered across racks -----------------------------------
    // One GPU from each host, in a deliberately rack-interleaved order.
    let tenant: Vec<GpuId> = all_hosts.iter().map(|&h| topo.host(h).gpus[0]).collect();
    let scattered: Vec<GpuId> = {
        let mut v = tenant.clone();
        v.swap(1, 4); // interleave racks
        v.swap(2, 5);
        v
    };

    // What the provider computes.
    let rings = optimal_rings(&topo, &scattered, ChannelPolicy::MatchPathDiversity);
    let host_ring = rings[0].host_sequence(&topo);
    println!(
        "\nlocality ring: {} channels, host order {:?}",
        rings.len(),
        host_ring
    );
    println!(
        "cross-rack edges: optimal {}, this ring {}, a rack-interleaved ring would pay {:.1}x",
        crossrack::optimal_cross_rack_edges(&topo, &host_ring),
        crossrack::cross_rack_edges(&topo, &host_ring),
        crossrack::worst_case_ratio(&topo, &host_ring),
    );

    let flows = JobFlows::from_rings(&topo, &rings, 0);
    let routes = ffa(&topo, std::slice::from_ref(&flows)).remove(0);
    println!(
        "FFA pinned {} of {} connections explicitly",
        routes.len(),
        flows.flows.len()
    );

    // ---- run it -------------------------------------------------------------
    let mut cluster = Cluster::new(Arc::clone(&topo), ClusterConfig::library_mode(1));
    let app = BaselineJob::spawn(
        &mut cluster,
        "custom",
        BaselineConfig {
            channels: rings.len(),
            ring: RingChoice::Explicit(rings),
            routes,
            ..Default::default()
        },
        scattered,
        vec![Phase::Collective {
            op: all_reduce_sum(),
            size: Bytes::mib(64),
        }],
        4,
        Nanos::ZERO,
    );
    cluster.run_until_quiescent(Nanos::from_secs(30));
    println!("\ncollective latencies on the custom fabric:");
    for rec in cluster.mgmt().timeline(app) {
        println!("  seq {}: {}", rec.seq, rec.latency().expect("complete"));
    }
}
