//! Dynamic reconfiguration: change a running tenant's ring at runtime —
//! the paper's Figure 4 protocol in action.
//!
//! An 8-GPU AllReduce job runs a clockwise ring over four switches wired
//! in a ring. A 75 Gbps background flow appears on one clockwise link;
//! the provider transparently reverses the ring (sequence-numbered
//! barrier over the control ring, drain, reconnect) and bandwidth
//! recovers. The tenant never stops issuing collectives.
//!
//! Run: `cargo run --release --example dynamic_reconfiguration`

use mccs::collectives::op::all_reduce_sum;
use mccs::collectives::{algo_bandwidth, RingOrder};
use mccs::ipc::CommunicatorId;
use mccs::netsim::FlowSpec;
use mccs::service::config::RouteMap;
use mccs::service::{Cluster, ClusterConfig};
use mccs::shim::{AppProgram, ScriptStep, ScriptedProgram};
use mccs::sim::{Bandwidth, Bytes, Nanos};
use mccs::topology::{GpuId, NicId, PodId, SwitchRole, TopologyBuilder};
use std::sync::Arc;

/// Four switches in a ring; per switch one training host (2 GPUs, 2x50G
/// NICs) and one traffic host (100G NIC) for the background flow.
fn ring_with_traffic_hosts() -> mccs::topology::Topology {
    let mut b = TopologyBuilder::new();
    let racks: Vec<_> = (0..4).map(|_| b.add_rack(PodId(0))).collect();
    let switches: Vec<_> = (0..4)
        .map(|i| b.add_switch(SwitchRole::Generic, Some(racks[i])))
        .collect();
    for i in 0..4 {
        b.connect_switches(switches[i], switches[(i + 1) % 4], Bandwidth::gbps(100.0));
    }
    for i in 0..4 {
        b.add_host(racks[i], switches[i], 2, Bandwidth::gbps(50.0)); // training
    }
    for i in 0..4 {
        b.add_host(racks[i], switches[i], 1, Bandwidth::gbps(100.0)); // traffic
    }
    b.build()
}

fn main() {
    let topo = Arc::new(ring_with_traffic_hosts());
    let mut cluster = Cluster::new(Arc::clone(&topo), ClusterConfig::default());

    let comm = CommunicatorId(1);
    let gpus: Vec<GpuId> = (0..8).map(GpuId).collect();
    let size = Bytes::mib(64);
    let ranks = gpus
        .iter()
        .enumerate()
        .map(|(rank, &gpu)| {
            let program = ScriptedProgram::new(
                format!("ar/r{rank}"),
                vec![
                    ScriptStep::Alloc { size, slot: 0 },
                    ScriptStep::Alloc { size, slot: 1 },
                    ScriptStep::CommInit {
                        comm,
                        world: gpus.clone(),
                        rank,
                    },
                    ScriptStep::Collective {
                        comm,
                        op: all_reduce_sum(),
                        size,
                        send_slot: 0,
                        recv_slot: 1,
                    },
                    ScriptStep::Repeat {
                        from_step: 3,
                        times: 299,
                    },
                ],
            );
            (gpu, Box::new(program) as Box<dyn AppProgram>)
        })
        .collect();
    let app = cluster.add_app("ar8", ranks);

    let report = |cluster: &mut Cluster, label: &str, from: Nanos, to: Nanos| {
        let samples: Vec<f64> = cluster
            .mgmt()
            .timeline(app)
            .iter()
            .filter(|r| {
                let t = r.completed_at.expect("complete");
                t >= from && t < to
            })
            .map(|r| algo_bandwidth(size, r.latency().expect("complete")).as_gbytes_per_sec())
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len().max(1) as f64;
        println!("{label}: {mean:.2} GB/s over {} collectives", samples.len());
    };

    // Phase 1: free run.
    cluster.run_until(Nanos::from_millis(700));
    report(
        &mut cluster,
        "free run           ",
        Nanos::from_millis(100),
        Nanos::from_millis(700),
    );

    // Phase 2: a 75G background flow lands on the clockwise sw0->sw1 link
    // (between the traffic hosts at switches 0 and 1: NICs 8 and 9).
    let now = cluster.now();
    let _bg = cluster.world.net.start_flow(
        now,
        FlowSpec::background(NicId(8), NicId(9), Bandwidth::gbps(75.0), 0),
    );
    cluster.run_until(Nanos::from_millis(1_400));
    report(
        &mut cluster,
        "background flow    ",
        Nanos::from_millis(800),
        Nanos::from_millis(1_400),
    );

    // Phase 3: the provider reverses the ring without touching the tenant.
    let info = cluster.mgmt().communicator(comm).expect("registered");
    let reversed: Vec<RingOrder> = info.rings.iter().map(RingOrder::reversed).collect();
    cluster.mgmt().reconfigure(comm, reversed, RouteMap::ecmp());
    let epoch_before = info.epoch;
    cluster.run_until(Nanos::from_millis(2_100));
    report(
        &mut cluster,
        "after reversal     ",
        Nanos::from_millis(1_500),
        Nanos::from_millis(2_100),
    );

    let info = cluster.mgmt().communicator(comm).expect("registered");
    println!(
        "\nepoch {} -> {}; every collective executed under a single epoch on all ranks",
        epoch_before, info.epoch
    );
    // Show the safety property explicitly.
    let records = cluster.mgmt().trace(app);
    let mut by_seq: std::collections::BTreeMap<u64, Vec<u64>> = Default::default();
    for r in &records {
        if r.completed_at.is_some() {
            by_seq.entry(r.seq).or_default().push(r.epoch);
        }
    }
    let mixed = by_seq
        .values()
        .filter(|epochs| epochs.windows(2).any(|w| w[0] != w[1]))
        .count();
    println!("collectives with mixed-epoch execution: {mixed} (must be 0)");
    assert_eq!(mixed, 0);
}
