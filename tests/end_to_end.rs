//! Cross-crate integration tests through the `mccs` facade: tenant
//! programs, the service, the controller policies and the simulated
//! substrates working together.

use mccs::baseline::{BaselineConfig, BaselineJob, Phase, RingChoice};
use mccs::collectives::op::all_reduce_sum;
use mccs::collectives::{algo_bandwidth, CollectiveOp};
use mccs::control::{optimize_cluster, PolicySpec};
use mccs::ipc::CommunicatorId;
use mccs::service::{Cluster, ClusterConfig};
use mccs::shim::{AppProgram, ScriptStep, ScriptedProgram};
use mccs::sim::{Bytes, Nanos};
use mccs::topology::{presets, GpuId};
use std::sync::Arc;

fn testbed() -> Cluster {
    Cluster::new(Arc::new(presets::testbed()), ClusterConfig::with_seed(99))
}

#[allow(clippy::too_many_arguments)]
fn scripted_app(
    cluster: &mut Cluster,
    name: &str,
    comm: CommunicatorId,
    gpus: &[GpuId],
    op: CollectiveOp,
    size: Bytes,
    iters: usize,
    start: Nanos,
) -> mccs::ipc::AppId {
    let ranks = gpus
        .iter()
        .enumerate()
        .map(|(rank, &gpu)| {
            let prog = ScriptedProgram::new(
                format!("{name}/r{rank}"),
                vec![
                    ScriptStep::Alloc { size, slot: 0 },
                    ScriptStep::Alloc { size, slot: 1 },
                    ScriptStep::CommInit {
                        comm,
                        world: gpus.to_vec(),
                        rank,
                    },
                    ScriptStep::SleepUntil(start),
                    ScriptStep::Collective {
                        comm,
                        op,
                        size,
                        send_slot: 0,
                        recv_slot: 1,
                    },
                    ScriptStep::Repeat {
                        from_step: 4,
                        times: iters - 1,
                    },
                ],
            );
            (gpu, Box::new(prog) as Box<dyn AppProgram>)
        })
        .collect();
    cluster.add_app(name, ranks)
}

/// The controller's locality-aware reconfiguration rescues a tenant whose
/// VM order interleaves racks — end-to-end through the facade.
#[test]
fn controller_rescues_bad_vm_order() {
    // 8-GPU tenant in rack-interleaved VM order: the rank-order ring
    // crosses racks on every host hop (4 flows per direction over 2
    // paths — oversubscribed however ECMP hashes them), while the
    // locality ring needs one hop per direction.
    let vm_order = vec![
        GpuId(0),
        GpuId(1),
        GpuId(4),
        GpuId(5),
        GpuId(2),
        GpuId(3),
        GpuId(6),
        GpuId(7),
    ];
    let size = Bytes::mib(128);

    let run = |optimize: bool| -> f64 {
        let mut cluster = testbed();
        let app = scripted_app(
            &mut cluster,
            "t",
            CommunicatorId(5),
            &vm_order,
            all_reduce_sum(),
            size,
            3,
            Nanos::from_millis(10),
        );
        cluster.run_until(Nanos::from_millis(2));
        if optimize {
            optimize_cluster(&mut cluster, &PolicySpec::mccs());
        }
        cluster.run_until_quiescent(Nanos::from_secs(60));
        let lats = cluster.mgmt().tenant_latencies(app);
        let mean = lats
            .iter()
            .map(|&(_, i, d)| (d - i).as_secs_f64())
            .sum::<f64>()
            / lats.len() as f64;
        algo_bandwidth(size, Nanos::from_secs_f64(mean)).as_gbytes_per_sec()
    };

    let unmanaged = run(false);
    let managed = run(true);
    assert!(
        managed > unmanaged * 1.2,
        "controller should rescue the interleaved ring: {unmanaged:.2} -> {managed:.2} GB/s"
    );
}

/// Service-mode and library-mode tenants coexist in one world and share
/// bandwidth: a service tenant and a baseline job on disjoint GPUs both
/// complete, and the shared links are split between them.
#[test]
fn service_and_library_tenants_coexist() {
    let mut cluster = testbed();
    let svc_gpus = vec![GpuId(0), GpuId(4)];
    let app = scripted_app(
        &mut cluster,
        "svc",
        CommunicatorId(1),
        &svc_gpus,
        all_reduce_sum(),
        Bytes::mib(64),
        3,
        Nanos::from_millis(5),
    );
    let lib = BaselineJob::spawn(
        &mut cluster,
        "lib",
        BaselineConfig {
            channels: 1,
            ring: RingChoice::RankOrder,
            ..Default::default()
        },
        vec![GpuId(2), GpuId(6)],
        vec![Phase::Collective {
            op: all_reduce_sum(),
            size: Bytes::mib(64),
        }],
        3,
        Nanos::from_millis(5),
    );
    cluster.run_until_quiescent(Nanos::from_secs(60));
    assert_eq!(cluster.mgmt().tenant_latencies(app).len(), 3);
    assert_eq!(cluster.mgmt().timeline(lib).len(), 3);
}

/// Memory management through the full stack: alloc via the shim, service
/// owns the handle, free returns the device memory.
#[test]
fn memory_roundtrip_through_the_service() {
    let mut cluster = testbed();
    let comm = CommunicatorId(1);
    let gpus = vec![GpuId(0), GpuId(1)];
    scripted_app(
        &mut cluster,
        "mem",
        comm,
        &gpus,
        all_reduce_sum(),
        Bytes::mib(8),
        1,
        Nanos::ZERO,
    );
    cluster.run_until_quiescent(Nanos::from_secs(10));
    // Two ranks x two 8 MiB buffers remain allocated service-side.
    assert_eq!(cluster.world.devices.used_memory(GpuId(0)), Bytes::mib(16));
    assert_eq!(cluster.world.devices.used_memory(GpuId(1)), Bytes::mib(16));
}

/// Different ops through the same stack: AllGather, ReduceScatter and
/// Broadcast all complete with latencies ordered by their per-edge byte
/// loads.
#[test]
fn op_zoo_latency_ordering() {
    use mccs::collectives::ReduceKind;
    let size = Bytes::mib(128);
    let mut lat = Vec::new();
    for (i, op) in [
        CollectiveOp::AllReduce(ReduceKind::Sum),
        CollectiveOp::AllGather,
        CollectiveOp::ReduceScatter(ReduceKind::Sum),
    ]
    .into_iter()
    .enumerate()
    {
        let mut cluster = testbed();
        let app = scripted_app(
            &mut cluster,
            "ops",
            CommunicatorId(10 + i as u64),
            &[GpuId(0), GpuId(2), GpuId(4), GpuId(6)],
            op,
            size,
            1,
            Nanos::from_millis(5),
        );
        cluster.run_until_quiescent(Nanos::from_secs(60));
        let l = cluster.mgmt().tenant_latencies(app);
        lat.push((d_minus_i(&l[0]), op));
    }
    assert!(
        lat[0].0 > lat[1].0,
        "AllReduce (2(n-1)/n) must outlast AllGather ((n-1)/n): {lat:?}"
    );
    let ratio = lat[1].0.as_secs_f64() / lat[2].0.as_secs_f64();
    assert!(
        (0.9..1.1).contains(&ratio),
        "AllGather and ReduceScatter move the same bytes: {lat:?}"
    );
}

fn d_minus_i(rec: &(u64, Nanos, Nanos)) -> Nanos {
    rec.2 - rec.1
}

/// Whole-stack determinism: two identical cluster runs produce identical
/// tenant-visible timings.
#[test]
fn facade_runs_are_deterministic() {
    let run = || {
        let mut cluster = testbed();
        let app = scripted_app(
            &mut cluster,
            "det",
            CommunicatorId(2),
            &[GpuId(0), GpuId(2), GpuId(4), GpuId(6)],
            all_reduce_sum(),
            Bytes::mib(32),
            4,
            Nanos::from_millis(5),
        );
        cluster.run_until(Nanos::from_millis(2));
        optimize_cluster(&mut cluster, &PolicySpec::mccs());
        cluster.run_until_quiescent(Nanos::from_secs(60));
        cluster.mgmt().tenant_latencies(app)
    };
    assert_eq!(run(), run());
}
